"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
fig5
    Reproduce the paper's headline figure analytically and print the
    optima table (optionally the ASCII curve).
epoch
    Run one checkpoint epoch of a chosen architecture on a simulated
    cluster and print the cost accounting.
job
    Run an end-to-end checkpointed job with failure injection and print
    the realized completion statistics.
study
    Paired multi-method comparison over shared failure traces.
validate
    Corroborate the Section V equations against Monte-Carlo.
campaign
    Run a preset or JSON-spec experiment campaign through the parallel,
    resumable orchestration layer (``--jobs``, ``--resume``, ``--store``).
trace export
    Run an instrumented scenario and export its span timeline as a
    Chrome/Perfetto trace or a JSONL event stream.
metrics
    Run an instrumented scenario and print its metrics in Prometheus
    text exposition format (or as a summary table).
bench scale
    Run the thousand-node scale sweep (incremental allocator + COW +
    buffer pool vs the reference paths) and optionally gate against a
    recorded ``BENCH_scale.json`` baseline (``--check``).
bench serving
    Serving-path bench: 1.2M-request arrival generation (chunked must
    equal monolithic bit-for-bit) plus a pinned checkpoint-protected
    cell, gated against ``BENCH_serving.json`` (``--check``).
serving run|study
    Checkpoint-protected request serving: ``run`` serves one open-loop
    stream under a chosen protection policy (baseline, checkpoint,
    checkpoint_sla, clone2); ``study`` compares policies over shared
    arrival+failure traces and prints the tail-latency table.
controlplane run|drain|status
    Drive the always-on cluster coordinator: ``run`` is the seeded
    churn soak (concurrent provision/kill/drain/query ops under
    transient faults and strict audits), ``drain`` performs rolling
    maintenance of every node with live migrations, ``status`` prints
    the coordinator's world view after a short managed run.
calibrate
    Measure this host's streaming XOR bandwidth (the model's
    ``memory_xor_bandwidth`` input).

``fig5``, ``study``, and ``validate`` execute through the campaign
layer too: ``--jobs N`` fans their task units across cores with
bit-identical output (deterministic per-task seeding), and ``--store``
makes them resumable.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import ascii_plot, format_bytes, format_seconds, render_table
from .failures import Exponential, FailureInjector, FailureSchedule
from .model import ClusterModel
from .sim import NULL_TRACER, Tracer
from .workloads import CheckpointedJob, paper_scenario, scaled_scenario

__all__ = ["main", "build_parser"]


def _fig5_report(result, plot: bool) -> None:
    rows = []
    for s in (result.diskful, result.diskless):
        rows.append([
            s.method,
            format_seconds(s.optimum.interval),
            format_seconds(s.optimum.overhead_at_optimum),
            f"{s.min_ratio:.4f}",
            f"{s.overhead_ratio * 100:.2f}%",
        ])
    print(render_table(
        ["method", "optimal interval", "T_ov", "E[T]/T", "overhead"],
        rows,
        title=(
            f"Fig. 5 @ MTBF {1.0 / result.lam / 3600.0:g} h, "
            f"job {result.T / 3600.0:g} h, "
            f"{result.cluster.n_nodes} nodes x "
            f"{result.cluster.vms_per_node} VMs"
        ),
    ))
    print(f"\ndiskless reduces expected completion time by "
          f"{result.reduction * 100:.1f}%")
    if plot:
        mask = result.diskful.ratios < 2.0
        print()
        print(ascii_plot(
            [
                ("diskless", result.diskless.intervals[mask],
                 result.diskless.ratios[mask]),
                ("diskful", result.diskful.intervals[mask],
                 result.diskful.ratios[mask]),
            ],
            logx=True,
            marks=[
                (result.diskless.optimum.interval, result.diskless.min_ratio),
                (result.diskful.optimum.interval, result.diskful.min_ratio),
            ],
        ))


def _campaign_kwargs(args: argparse.Namespace) -> dict:
    """The runner options every campaign-backed command shares."""
    return {
        "jobs": args.jobs,
        "store": args.store,
        "resume": not getattr(args, "no_resume", False),
    }


def _report_failures(campaign) -> None:
    for run in campaign.failures()[:5]:
        print(f"FAILED {run.task.kind} {run.task.params}: {run.error}",
              file=sys.stderr)
    if campaign.n_failed > 5:
        print(f"... and {campaign.n_failed - 5} more failed tasks",
              file=sys.stderr)


def _fig5_scheme_sweep(args: argparse.Namespace) -> int:
    """Analytic scheme comparison: loss probability vs overhead.

    For each coding scheme, prints its erasure tolerance, storage and
    traffic overheads at this cluster's group size, and the probability
    that failures during a degraded window exceed the scheme's remaining
    tolerance (:func:`repro.model.montecarlo.window_loss_probability`).
    """
    from .coding import parse_scheme
    from .model.montecarlo import window_loss_probability

    specs = args.scheme or ["xor", "rdp", "rs-8-2", "rep-3"]
    lam_node = 1.0 / (args.mtbf * 3600.0) / args.nodes
    rows = []
    for spec in specs:
        sch = parse_scheme(spec)
        k = max(1, args.nodes - sch.n_shards)
        p = window_loss_probability(
            lam_node, args.nodes, args.window, tolerance=sch.tolerance
        )
        rows.append([
            sch.name, sch.tolerance, sch.n_shards,
            f"{sch.storage_overhead(k):.2f}x",
            f"{sch.traffic_factor(k):.1f}x",
            f"{p:.3e}",
        ])
    print(render_table(
        ["scheme", "tolerance", "shards", "storage", "traffic",
         "P(loss in window)"],
        rows,
        title=f"coding schemes @ {args.nodes} nodes, MTBF {args.mtbf:g} h, "
              f"window {args.window:g} s (k = nodes - shards)",
    ))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .campaign import run_fig5_campaign

    if args.scheme is not None:
        return _fig5_scheme_sweep(args)
    cluster = ClusterModel(
        n_nodes=args.nodes,
        vms_per_node=args.vms_per_node,
        vm_dirty_rate=args.dirty_rate,
    )
    result, campaign = run_fig5_campaign(
        lam=1.0 / (args.mtbf * 3600.0),
        T=args.job * 3600.0,
        cluster=cluster,
        **_campaign_kwargs(args),
    )
    _fig5_report(result, args.plot)
    _report_failures(campaign)
    return 0 if campaign.n_failed == 0 else 1


def _build_epoch_checkpointer(sc, arch: str, n_nodes: int,
                              tracer: Tracer = NULL_TRACER):
    """One checkpointer of the chosen architecture on ``sc.cluster``.

    Mutates the cluster where the architecture demands it (vacating
    parity nodes).  Shared by ``epoch`` and the telemetry subcommands.
    """
    from .checkpoint import DiskfulCheckpointer
    from .core import checkpoint_node, dvdc, first_shot

    if arch == "dvdc":
        return dvdc(sc.cluster, tracer=tracer)
    if arch == "diskful":
        return DiskfulCheckpointer(sc.cluster, tracer=tracer)
    if arch == "checkpoint-node":
        # vacate the last node for parity duty
        node = n_nodes - 1
        for vm in list(sc.cluster.vms_on(node)):
            sc.cluster.node(node).evict(vm)
            del sc.cluster.vms[vm.vm_id]
        return checkpoint_node(sc.cluster, node_id=node, tracer=tracer)
    if arch == "firstshot":
        for node in range(n_nodes):
            extra = sc.cluster.vms_on(node)[1:] if node < n_nodes - 1 else (
                sc.cluster.vms_on(node)
            )
            for vm in extra:
                sc.cluster.node(node).evict(vm)
                del sc.cluster.vms[vm.vm_id]
        return first_shot(sc.cluster, tracer=tracer)
    raise ValueError(arch)  # pragma: no cover - argparse restricts choices


def _cmd_epoch(args: argparse.Namespace) -> int:
    sc = scaled_scenario(
        args.nodes, args.vms_per_node, seed=args.seed, functional=False
    )
    ck = _build_epoch_checkpointer(sc, args.arch, args.nodes)

    out = {}

    def proc():
        out["r"] = yield from ck.run_cycle()

    sc.sim.run_processes(proc())
    r = out["r"]
    rows = [[
        args.arch,
        len(sc.cluster.all_vms),
        format_seconds(r.overhead),
        format_seconds(r.latency),
        format_bytes(r.network_bytes),
    ]]
    print(render_table(
        ["architecture", "VMs", "overhead", "latency", "traffic"],
        rows,
        title="one checkpoint epoch",
    ))
    xor = getattr(r, "xor_seconds_by_node", None)
    if xor:
        print("parity work by node: "
              + ", ".join(f"{n}: {format_seconds(t)}" for n, t in sorted(xor.items())))
    return 0


def _cmd_job(args: argparse.Namespace) -> int:
    from .checkpoint import DiskfulCheckpointer, IncrementalCapture
    from .core import dvdc

    work = args.work * 3600.0
    rows = []
    for seed in range(args.seeds):
        sc = paper_scenario(seed=seed, functional=True)
        rng = sc.rngs.stream("failures")
        schedule = FailureSchedule.draw(
            rng, Exponential(1.0 / (args.node_mtbf * 3600.0)),
            sc.cluster.n_nodes, horizon=work * 10, repair_time=args.repair,
        )
        injector = FailureInjector(sc.sim, sc.cluster.n_nodes, schedule=schedule)
        if args.method == "dvdc":
            ck = dvdc(sc.cluster, strategy=IncrementalCapture())
        else:
            ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(
            sc.cluster, ck, work=work, interval=args.interval,
            injector=injector, repair_time=args.repair, overlap=args.overlap,
        )
        injector.start()
        proc = job.start()
        sc.sim.run(until=work * 50)
        if proc.ok is False:
            raise proc.value
        r = job.result
        rows.append([
            seed,
            "yes" if r.completed else "LOST",
            f"{r.time_ratio:.3f}",
            r.n_failures,
            r.n_recoveries,
            format_seconds(r.checkpoint_time),
            format_seconds(r.lost_work),
        ])
    print(render_table(
        ["seed", "completed", "T/T_ideal", "failures", "recoveries",
         "ckpt time", "lost work"],
        rows,
        title=(
            f"{args.method} job: {args.work:g} h work, interval "
            f"{args.interval:g} s, node MTBF {args.node_mtbf:g} h"
            + (", overlapped" if args.overlap else "")
        ),
    ))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .campaign import run_study_campaign

    methods = []
    for name in args.methods:
        overlap = name.endswith("+overlap")
        base = name.removesuffix("+overlap")
        methods.append({
            "name": base,
            "incremental": not args.full,
            "overlap": overlap,
            "label": name,
        })
    outcome, campaign = run_study_campaign(
        methods=methods,
        work=args.work * 3600.0,
        interval=args.interval,
        node_mtbf=args.node_mtbf * 3600.0,
        repair_time=args.repair,
        seeds=args.seeds,
        n_nodes=args.nodes,
        vms_per_node=args.vms_per_node,
        **_campaign_kwargs(args),
    )
    print(outcome.summary_table())
    _report_failures(campaign)
    return 0 if campaign.n_failed == 0 else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from .campaign import run_validate_campaign
    from .model import expected_time_with_overhead

    T = args.job * 3600.0
    cases, campaign = run_validate_campaign(
        T=T,
        T_ov=args.overhead,
        T_r=args.repair,
        runs=args.runs,
        seed=args.seed,
        **_campaign_kwargs(args),
    )
    rows = []
    worst = 0.0
    for case in cases:
        mc = case["estimate"]
        analytic = expected_time_with_overhead(
            case["lam"], T, case["N"], args.overhead, args.repair
        )
        err = abs(mc.mean - analytic) / analytic
        worst = max(worst, err)
        rows.append([
            f"{case['mtbf_h']:g}h",
            format_seconds(case["N"]),
            format_seconds(analytic),
            format_seconds(mc.mean),
            f"{err * 100:.2f}%",
            "yes" if mc.within(analytic) else "NO",
        ])
    print(render_table(
        ["MTBF", "interval", "closed form", "Monte-Carlo", "rel err",
         "within 3 sigma"],
        rows,
        title=f"Section V equations vs Monte-Carlo ({args.runs} runs each)",
    ))
    _report_failures(campaign)
    return 0 if worst < 0.05 and campaign.n_failed == 0 else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignRunner,
        ResultStore,
        Sweep,
        run_fig5_campaign,
        run_study_campaign,
        run_validate_campaign,
    )
    from .model import expected_time_with_overhead

    kwargs = _campaign_kwargs(args)

    if args.spec is not None:
        import json as _json

        sweep = Sweep.from_dict(_json.loads(open(args.spec).read()))
        store = ResultStore(args.store) if args.store else None
        runner = CampaignRunner(store=store, jobs=args.jobs,
                                resume=not args.no_resume)
        result = runner.run(sweep.expand())
        print(result.summary_table(title=f"campaign {sweep.name!r}"))
        _report_failures(result)
        return 0 if result.n_failed == 0 else 1

    if args.preset == "fig5":
        result, campaign = run_fig5_campaign(points=args.points, **kwargs)
        print(campaign.summary_table(title="campaign 'fig5'"))
        print()
        _fig5_report(result, plot=False)
    elif args.preset == "validate":
        cases, campaign = run_validate_campaign(runs=args.runs,
                                                seed=args.seed, **kwargs)
        print(campaign.summary_table(title="campaign 'validate'"))
        print()
        rows = [
            [
                f"{c['mtbf_h']:g}h",
                format_seconds(c["N"]),
                format_seconds(c["estimate"].mean),
                "yes" if c["estimate"].within(expected_time_with_overhead(
                    c["lam"], 8 * 3600.0, c["N"], 120.0, 60.0
                )) else "NO",
            ]
            for c in cases
        ]
        print(render_table(
            ["MTBF", "interval", "E[T] Monte-Carlo", "within 3 sigma"],
            rows,
            title=f"VAL-MC grid ({args.runs} runs per point)",
        ))
    else:  # study
        outcome, campaign = run_study_campaign(
            methods=[{"name": "dvdc"}, {"name": "diskful"}],
            seeds=args.seeds,
            work=args.work * 3600.0,
            **kwargs,
        )
        print(campaign.summary_table(title="campaign 'study'"))
        print()
        print(outcome.summary_table())
    _report_failures(campaign)
    return 0 if campaign.n_failed == 0 else 1


def _run_instrumented(args: argparse.Namespace):
    """Run the chosen scenario with a live probe; returns the probe.

    ``epoch``/``job`` run full simulations (spans on the checkpoint /
    recovery tracks, sim/network/storage metrics); ``fig5`` runs the
    analytic campaign (spans on the campaign track, per-task timings).
    """
    from .telemetry import Probe

    probe = Probe()
    if args.scenario == "fig5":
        from .campaign import run_fig5_campaign

        run_fig5_campaign(points=args.points, probe=probe)
        return probe
    if args.scenario == "serving":
        from .serving.study import ServingLoad, ServingPolicy, run_serving_cell

        run_serving_cell(
            ServingPolicy("checkpoint", checkpoint=True),
            ServingLoad(n_requests=20_000, n_nodes=args.nodes,
                        vms_per_node=args.vms_per_node),
            args.seed, tracer=probe,
        )
        return probe
    if args.scenario == "epoch":
        sc = scaled_scenario(
            args.nodes, args.vms_per_node, seed=args.seed, functional=False,
            tracer=probe,
        )
        sc.sim.attach_probe(probe)
        ck = _build_epoch_checkpointer(sc, args.arch, args.nodes, tracer=probe)
        sc.sim.run_processes(ck.run_cycle())
        return probe
    # job: checkpointed work with failure injection — exercises the
    # recovery track too
    work = args.work * 3600.0
    sc = paper_scenario(seed=args.seed, functional=True, tracer=probe)
    sc.sim.attach_probe(probe)
    rng = sc.rngs.stream("failures")
    schedule = FailureSchedule.draw(
        rng, Exponential(1.0 / (args.node_mtbf * 3600.0)),
        sc.cluster.n_nodes, horizon=work * 10, repair_time=30.0,
    )
    injector = FailureInjector(
        sc.sim, sc.cluster.n_nodes, schedule=schedule, tracer=probe
    )
    ck = _build_epoch_checkpointer(sc, args.arch, sc.cluster.n_nodes,
                                   tracer=probe)
    job = CheckpointedJob(
        sc.cluster, ck, work=work, interval=args.interval,
        injector=injector, repair_time=30.0,
    )
    injector.start()
    proc = job.start()
    sc.sim.run(until=work * 50)
    if proc.ok is False:
        raise proc.value
    return probe


def _add_scenario_flags(sp: argparse.ArgumentParser) -> None:
    """What to run under instrumentation — shared by ``trace``/``metrics``."""
    sp.add_argument("--scenario", choices=["epoch", "job", "fig5", "serving"],
                    default="epoch",
                    help="what to run under instrumentation")
    sp.add_argument("--arch", choices=["dvdc", "diskful"], default="dvdc",
                    help="epoch/job: checkpoint architecture")
    sp.add_argument("--nodes", type=int, default=4, help="epoch: cluster size")
    sp.add_argument("--vms-per-node", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--points", type=int, default=48,
                    help="fig5: interval grid points")
    sp.add_argument("--work", type=float, default=0.5, help="job: hours")
    sp.add_argument("--interval", type=float, default=300.0,
                    help="job: checkpoint interval, seconds")
    sp.add_argument("--node-mtbf", type=float, default=2.0,
                    help="job: per-node MTBF, hours")


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from .telemetry import write_chrome_trace, write_jsonl

    probe = _run_instrumented(args)
    if args.format == "chrome":
        out = args.out or "trace.json"
        write_chrome_trace(out, probe.spans, clock=args.clock)
        n = len(probe.spans.completed)
        print(f"wrote {n} spans ({args.clock} clock) to {out}")
    else:
        out = args.out or "trace.jsonl"
        write_jsonl(out, probe)
        print(f"wrote {len(probe.records)} trace records, "
              f"{len(probe.spans.completed)} spans to {out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .telemetry import prometheus_text, summary_table

    probe = _run_instrumented(args)
    if args.format == "prom":
        text = prometheus_text(probe.metrics)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {len(text.splitlines())} lines to {args.out}")
        else:
            print(text, end="")
    else:
        print(summary_table(probe.metrics,
                            title=f"telemetry: {args.scenario}"))
    return 0


def _audit_heal(args: argparse.Namespace) -> int:
    """Spare-pool self-healing scenario: permanent node loss on a Fig. 4
    cluster, recovery, then ``SelfHealer.reprotect``.  With a spare the
    cluster must end PROTECTED (and report the window of vulnerability);
    with an empty pool it must settle in DEGRADED and say so."""
    import numpy as np

    from .audit import Auditor
    from .cluster import ClusterSpec, VirtualCluster
    from .core import dvdc
    from .resilience import ClusterHealth, SelfHealer, SparePool
    from .sim import Simulator

    sim = Simulator()
    total = args.nodes + args.spares
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=total))
    rng = np.random.default_rng(args.seed)
    for node in range(args.nodes):
        for _ in range(args.vms_per_node):
            vm = cluster.create_vm(node, 64e6, image_pages=32, page_size=128)
            vm.image.write(
                0, rng.integers(0, 256, vm.image.nbytes // 2, dtype=np.uint8)
            )
            vm.image.clear_dirty()
    from .coding import parse_scheme

    spares = SparePool.provision(cluster, args.spares)
    n_shards = parse_scheme(args.scheme).n_shards
    ck = dvdc(
        cluster, group_size=max(1, args.nodes - n_shards), scheme=args.scheme
    )
    healer = SelfHealer(ck, spares=spares)
    out = {}

    def driver():
        r = yield from ck.run_cycle()
        assert r.committed
        yield sim.timeout(60.0)
        cluster.kill_node(0)  # permanent: the node never comes back
        healer.on_failure()
        yield from ck.recover(0)
        out["report"] = yield from healer.reprotect()

    sim.run_processes(driver())
    report = out["report"]
    print(render_table(
        ["spares", "final state", "rounds", "spares used", "spares left",
         "exhausted", "relocated", "healed groups", "degraded window"],
        [[args.spares, report.state.value, report.rounds,
          ",".join(map(str, report.spares_used)) or "-",
          len(spares), spares.exhausted,
          len(report.relocated), len(report.healed_groups),
          format_seconds(report.window_seconds)
          if report.window_seconds is not None else "still open"]],
        title="self-healing after permanent node loss (fig4)",
    ))
    if spares.exhausted:
        print(f"  spare pool ran dry {spares.exhausted} time(s) — "
              "degraded groups rely on relocation only")
    for issue in report.issues:
        print(f"  outstanding: {issue}")
    if report.state == ClusterHealth.PROTECTED:
        auditor = Auditor(cluster, ck.layout, scheme=ck.scheme)
        auditor.run(ck.committed_epoch, context="post-heal", strict=True)
        for v in auditor.violations:
            print(f"  {v}")
        if auditor.violations:
            return 1
    want = ClusterHealth.PROTECTED if args.spares else ClusterHealth.DEGRADED
    return 0 if report.state == want else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import FuzzConfig, canonical_schedule, fuzz, run_trial
    from .audit.fuzzer import LAYOUTS

    if args.heal:
        return _audit_heal(args)
    geo_sites = getattr(args, "geo", 0)
    if geo_sites:
        layouts = ["fig4"]  # geo mode is DVDC-only
    else:
        layouts = list(LAYOUTS) if args.layout == "all" else [args.layout]
    failed = False
    for layout in layouts:
        config = FuzzConfig(
            layout=layout,
            n_nodes=args.nodes,
            vms_per_node=args.vms_per_node,
            n_cycles=args.cycles,
            max_faults=args.max_faults,
            heterogeneous=args.heterogeneous,
            strategy=args.strategy,
            transient=args.transient,
            scheme=args.scheme,
            geo_sites=geo_sites,
            geo_policy=args.geo_policy,
        )
        if args.fuzz:
            result = fuzz(
                config, seeds=args.seeds, budget=args.budget,
                base_seed=args.seed,
            )
            clean = sum(
                1 for t in result.trials
                if not t.failed and not t.unrecoverable
            )
            unrec = sum(1 for t in result.trials if t.unrecoverable)
            transients = sum(len(t.transients_fired) for t in result.trials)
            print(render_table(
                ["trials", "clean", "unrecoverable", "failing", "violations",
                 "transients", "wall"],
                [[len(result.trials), clean, unrec, len(result.failures),
                  result.n_violations, transients,
                  format_seconds(result.elapsed)]],
                title=f"audit fuzz: {layout}"
                      + (f" [{args.scheme}]" if args.scheme != "xor" else "")
                      + (f" geo:{args.geo_policy}x{geo_sites}"
                         if geo_sites else "")
                      + (" +transient" if args.transient else "")
                      + (" (budget exhausted)" if result.budget_exhausted else ""),
            ))
            for t in result.failures:
                failed = True
                print(f"  seed {t.seed} — minimal reproducer:")
                for f in t.schedule:
                    print(f"    {f}")
                for v in t.violations[:5]:
                    print(f"    {v}")
        else:
            trial = run_trial(config, canonical_schedule(config), args.seed)
            verdict = (
                "FAIL" if trial.failed
                else ("unrecoverable" if trial.unrecoverable else "ok")
            )
            print(render_table(
                ["commits", "aborts", "recoveries", "violations", "verdict"],
                [[trial.commits, trial.aborts, trial.recoveries,
                  len(trial.violations), verdict]],
                title=f"audit: {layout} (single mid-run node failure)",
            ))
            for v in trial.violations[:10]:
                failed = True
                print(f"  {v}")
    return 1 if failed else 0


def _geo_config(args: argparse.Namespace):
    from .geo import GeoConfig

    return GeoConfig(
        n_nodes=args.nodes,
        n_sites=args.sites,
        racks_per_site=args.racks_per_site,
        vms_per_node=args.vms_per_node,
        epochs=args.epochs,
        seed=args.seed,
        scheme=args.scheme,
        wan_bandwidth=args.wan_bandwidth,
        wan_latency=args.wan_latency,
        kill_site=args.kill_site,
        lag_epochs=args.lag_epochs,
    )


def _geo_cell_row(r: dict) -> list:
    return [
        r["policy"], r["seed"] if "seed" in r else "", r["kill_site"],
        "yes" if r["beyond_tolerance"] else "no",
        "yes" if r["survived"] else "NO",
        r["rollback_epochs"], r["salvaged_vms"], r["respread_vms"],
        f"{r['wan_bytes'] / 1e9:.1f}",
    ]


_GEO_HEADERS = ["policy", "seed", "killed", "beyond-tol", "survived",
                "rollback", "salvaged", "respread", "wan GB"]


def _cmd_geo_run(args: argparse.Namespace) -> int:
    from dataclasses import replace as _replace

    from .geo import run_geo_point

    cfg = _replace(_geo_config(args), policy=args.policy)
    r = run_geo_point(cfg)
    row = _geo_cell_row(r)
    row[1] = cfg.seed
    print(render_table(
        _GEO_HEADERS, [row],
        title=f"geo run: {cfg.n_nodes} nodes / {cfg.n_sites} sites "
              f"[{cfg.scheme}]",
    ))
    if r.get("audit_violations"):
        for v in r["audit_violations"][:5]:
            print(f"  {v}")
    ok = r["survived"] or (cfg.policy == "local-parity" and r["beyond_tolerance"])
    return 0 if ok and not r.get("audit_violations") else 1


def _cmd_geo_study(args: argparse.Namespace) -> int:
    from .campaign import ResultStore
    from .geo import run_geo_study

    cfg = _geo_config(args)
    store = ResultStore(args.store) if args.store else None
    study = run_geo_study(
        cfg, policies=tuple(args.policies),
        seeds=tuple(range(args.seed, args.seed + args.seeds)),
        jobs=args.jobs, store=store,
    )
    rows = []
    for cell in study["cells"]:
        row = _geo_cell_row(cell)
        rows.append(row)
    print(render_table(
        _GEO_HEADERS, rows,
        title=f"geo study: {cfg.n_nodes} nodes / {cfg.n_sites} sites, "
              f"site kill={'worst' if cfg.kill_site == -1 else cfg.kill_site}",
    ))
    for policy, s in study["summary"].items():
        print(f"  {policy}: {s['survived']}/{s['cells']} survived, "
              f"{s['data_lost']} lost data, "
              f"mean rollback {s['mean_rollback_epochs']:.1f} epochs, "
              f"mean WAN {s['mean_wan_bytes'] / 1e9:.1f} GB")
    return 0


def _cmd_bench_geo(args: argparse.Namespace) -> int:
    import json as _json

    from .geo import generate_geo_bench

    result = generate_geo_bench(quick=args.quick, log=lambda m: print(f"  {m}"))
    rows = [
        [p["policy"], p["site_cost"],
         f"{p['closed_form']:.4g}", f"{p['mc_mean']:.4g}",
         f"{p['mc_std_error']:.2g}",
         "yes" if p["agrees"] else "NO",
         "yes" if p["predicted_beyond_tolerance"] else "no",
         "yes" if p["matches_sim"] else "NO"]
        for p in result["model"]["points"]
    ]
    print(render_table(
        ["policy", "site-cost", "closed form", "MC mean", "MC stderr",
         "agrees", "pred beyond-tol", "matches sim"],
        rows, title="geo bench: window-loss model vs Monte-Carlo",
    ))
    summary = result["summary"]
    for policy, s in summary.items():
        print(f"  {policy}: {s['survived']}/{s['cells']} survived a "
              f"full-site outage")
    if args.write:
        with open(args.out, "w") as fh:
            _json.dump(result, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    ok = (
        all(p["agrees"] and p["matches_sim"] for p in result["model"]["points"])
        and summary["local-parity"]["survived"] == 0
        and summary["geo-spread"]["survived"] == summary["geo-spread"]["cells"]
        and summary["remus-async"]["survived"] == summary["remus-async"]["cells"]
    )
    if not ok:
        print("bench geo FAILED: survival matrix or model corroboration "
              "does not match predictions")
    return 0 if ok else 1


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    import json as _json

    from .perf import compare_to_baseline, generate_bench

    result = generate_bench(
        quick=args.quick, epochs=args.epochs, ref_cap=args.ref_cap,
        log=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    rows = []
    for p in result["points"]:
        rows.append([
            p["n_nodes"],
            p["n_vms"],
            f"{p['events_per_sec']:,.0f}",
            f"{p['epochs_per_sec']:.3f}",
            f"{p['speedup_vs_reference']:.1f}x"
            + ("*" if p["reference_capped"] else ""),
            format_bytes(p["peak_rss_bytes"]),
        ])
    print(render_table(
        ["nodes", "VMs", "events/s", "epochs/s", "vs reference", "peak RSS"],
        rows,
        title="DVDC scale sweep (incremental allocator + COW + buffer pool)",
    ))
    if any(p["reference_capped"] for p in result["points"]):
        print("  * reference measured over a capped wall-clock window; "
              "speedup from events/s (identical event streams)")
    hp = result["heap_bench"]
    print(f"  heap bench: {hp['ops_per_sec']:,.0f} ops/s, peak heap "
          f"{hp['peak_heap']} of {hp['n_events']:,} scheduled "
          f"({hp['compactions']} compactions)")
    cb = result.get("coding_bench")
    if cb:
        print(f"  coding bench: RS({cb['k']},{cb['m']}) encode "
              f"{cb['rs_encode_mbps']:,.0f} MB/s, decode "
              f"{cb['rs_decode_mbps']:,.0f} MB/s "
              f"(XOR {cb['xor_encode_mbps']:,.0f}/"
              f"{cb['xor_decode_mbps']:,.0f} MB/s)")
    if args.write:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = _json.load(fh)
        failures, warnings = compare_to_baseline(
            result, baseline, tolerance=args.tolerance
        )
        for w in warnings:
            print(f"WARN {w}", file=sys.stderr)
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _serving_load(args: argparse.Namespace):
    from .serving.study import ServingLoad

    return ServingLoad(
        rate=args.rate,
        n_requests=args.requests,
        service_mean=args.service_mean,
        service_dist=args.dist,
        n_nodes=args.nodes,
        vms_per_node=args.vms_per_node,
        node_mtbf=args.node_mtbf,
        repair_time=args.repair,
        slo_p99=args.slo,
    )


def _cmd_serving_run(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .serving.study import policies_named, run_serving_cell
    from .telemetry import Probe, summary_table

    policy = policies_named([args.policy])[0]
    if args.interval is not None:
        policy = replace(policy, interval=args.interval)
    probe = Probe() if args.metrics else None
    report = run_serving_cell(
        policy, _serving_load(args), args.seed,
        tracer=probe if probe is not None else NULL_TRACER,
    )
    lat = report["latency"]
    print(render_table(
        ["offered", "completed", "lost", "p50 ms", "p95 ms", "p99 ms",
         "p999 ms", "pauses", "pause s", "failures"],
        [[
            report["offered"],
            report["completed"],
            report["lost"] + report["lost_unrouted"],
            f"{lat.get('p50', float('nan')) * 1e3:.1f}",
            f"{lat.get('p95', float('nan')) * 1e3:.1f}",
            f"{lat.get('p99', float('nan')) * 1e3:.1f}",
            f"{lat.get('p999', float('nan')) * 1e3:.1f}",
            report["pauses"],
            f"{report['pause_seconds']:.2f}",
            report["failures"],
        ]],
        title=f"serving run: policy {policy.name!r}, seed {args.seed}",
    ))
    if "sla" in report:
        sla = report["sla"]
        print(f"  SLA: p99 target {sla['slo_p99'] * 1e3:.0f} ms, "
              f"{sla['breaches']}/{sla['windows']} windows breached, "
              f"{sla['adjustments']} interval adjustments "
              f"(final {sla['interval_final']:.2f}s)")
    if probe is not None:
        print()
        print(summary_table(probe.metrics, title="serving telemetry"))
    return 0 if report["drained"] and not report["unrecoverable"] else 1


def _cmd_serving_study(args: argparse.Namespace) -> int:
    from .serving.study import policies_named, run_serving_study

    outcome, campaign = run_serving_study(
        policies=policies_named(args.policies),
        load=_serving_load(args),
        seeds=args.seeds,
        **_campaign_kwargs(args),
    )
    print(outcome.summary_table())
    _report_failures(campaign)
    return 0 if campaign.n_failed == 0 else 1


def _cmd_bench_serving(args: argparse.Namespace) -> int:
    import json as _json

    from .serving.bench import compare_serving_baseline, generate_serving_bench

    result = generate_serving_bench(
        quick=args.quick,
        log=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    arr = result["arrivals"]
    rows = [["arrivals", f"{arr['n_requests']:,}",
             f"{arr['requests_per_sec']:,.0f}", arr["digest"][:16]]]
    for leg in ("serve_quick", "serve"):
        if leg in result:
            srv = result[leg]
            rows.append([leg, f"{srv['n_requests']:,}",
                         f"{srv['requests_per_sec']:,.0f}",
                         srv["digest"][:16]])
    print(render_table(
        ["leg", "requests", "req/s", "digest"],
        rows,
        title="serving bench (chunked generation + checkpointed cell)",
    ))
    if not arr["chunk_invariant"]:
        print("FAIL arrival stream is not chunk-invariant", file=sys.stderr)
        return 1
    if args.write:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            baseline = _json.load(fh)
        failures, warnings = compare_serving_baseline(
            result, baseline, tolerance=args.tolerance
        )
        for w in warnings:
            print(f"WARN {w}", file=sys.stderr)
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        if failures:
            return 1
        print(f"serving gate passed against {args.check} "
              f"(throughput tolerance {args.tolerance:.0%})")
    return 0


def _controlplane_build(args: argparse.Namespace):
    """Build a managed functional cluster: (sim, cluster, ck, cp, rngs)."""
    import numpy as np

    from .cluster import ClusterSpec, VirtualCluster
    from .controlplane import ControlPlane, ControlPlaneConfig
    from .core import dvdc
    from .resilience import DEFAULT_RETRY, SparePool
    from .sim import Simulator, Tracer
    from .sim.rng import RngRegistry

    sim = Simulator()
    tracer = Tracer()
    total = args.nodes + args.spares
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=total), tracer=tracer)
    rngs = RngRegistry(args.seed)
    init = rngs.stream("image-init")
    pages, page_size = 16, 64
    for i in range(args.nodes * args.vms_per_node):
        vm = cluster.create_vm(
            i % args.nodes, float(pages * page_size),
            dirty_rate=10.0, image_pages=pages, page_size=page_size,
        )
        vm.image.write(0, init.integers(0, 256, 512, dtype=np.uint8))
        vm.image.clear_dirty()
    ck = dvdc(
        cluster, group_size=args.group_size, tracer=tracer,
        retry=DEFAULT_RETRY, retry_rng=rngs.stream("retry"),
    )
    spares = (
        SparePool(cluster, node_ids=list(range(args.nodes, total)),
                  tracer=tracer)
        if args.spares else None
    )
    config = ControlPlaneConfig(
        checkpoint_interval=2.0,
        repair_time=args.repair_time,
        maintenance_seconds=args.maintenance_seconds,
    )
    cp = ControlPlane(cluster, ck, spares=spares, config=config,
                      tracer=tracer)
    return sim, cluster, ck, cp, rngs


def _controlplane_summary(cp) -> str:
    status = cp.status()
    ops = status["ops"]
    return render_table(
        ["ops", "done", "failed", "fences", "recoveries", "migrations",
         "verified", "audits", "violations", "health"],
        [[sum(ops.values()), ops["DONE"], ops["FAILED"],
          len([r for r in cp.tracer.records
               if r.kind == "controlplane.fence"]),
          status["recoveries"], status["migrations"],
          status["verified_migrations"], status["audits"],
          status["audit_violations"], status["health"]]],
        title="control plane",
    )


def _cmd_controlplane_run(args: argparse.Namespace) -> int:
    """Seeded churn soak: concurrent provision/kill/drain/query ops under
    transient faults, every reconfiguration strictly audited."""
    from .controlplane import AuditFailure
    from .resilience import TransientFaultInjector, TransientFaultSchedule
    from .sim import AllOf

    sim, cluster, ck, cp, rngs = _controlplane_build(args)
    if args.faults:
        horizon = args.ops * args.mean_gap * 1.2
        schedule = TransientFaultSchedule.draw(
            rngs.stream("faults"), args.nodes, horizon,
            rate=args.fault_rate, mean_duration=1.5,
        )
        injector = TransientFaultInjector(
            sim, cluster, schedule, rng=rngs.stream("fault-targets"),
            tracer=cp.tracer,
        )
        injector.start()
    cp.start()
    rng = rngs.stream("churn")
    outcome = {"ok": False, "error": None}

    def churn():
        ops = []
        for _ in range(args.ops):
            yield sim.timeout(float(rng.exponential(args.mean_gap)))
            kind = rng.choice(
                ["provision", "kill", "drain", "query"],
                p=[0.25, 0.2, 0.15, 0.4],
            )
            params = {}
            if kind == "provision":
                params = dict(memory_bytes=1024.0, image_pages=16,
                              page_size=64)
            elif kind in ("kill", "drain"):
                candidates = [
                    n.node_id for n in cluster.alive_nodes
                    if n.node_id not in cp.maintenance
                    and n.node_id not in cp.fenced
                ]
                if not candidates:
                    kind = "query"
                else:
                    params = dict(node_id=int(rng.choice(candidates)))
            ops.append(cp.submit(kind, **params))
        yield AllOf(sim, [op.done for op in ops])
        # settle: let in-flight fences/recoveries/repairs finish
        settle = 0
        while (cp.fenced or cp._recovery_queue) and settle < 600:
            yield sim.timeout(1.0)
            settle += 1
        yield sim.timeout(2 * cp.config.repair_time)
        # one fresh epoch with every node back: re-encodes any parity a
        # late repair restored capacity for, so the audit sees steady state
        yield from cp.checkpoint()
        try:
            report = cp.audit("post-soak")
            outcome["ok"] = report.ok
        except AuditFailure as exc:
            outcome["error"] = str(exc)
        cp.stop()

    sim.run_processes(churn(), until=args.ops * args.mean_gap * 200)
    print(_controlplane_summary(cp))
    terminal = cp.all_ops_terminal
    print(f"all ops terminal: {terminal}; final strict audit "
          f"{'clean' if outcome['ok'] else 'FAILED'}")
    if outcome["error"]:
        print(f"  {outcome['error']}")
    for op in cp.ops:
        if not op.state.terminal:
            print(f"  stuck: {op!r} params={op.params}")
    return 0 if terminal and outcome["ok"] else 1


def _cmd_controlplane_drain(args: argparse.Namespace) -> int:
    """Rolling maintenance: drain+maintain+rejoin every node in turn."""
    sim, cluster, ck, cp, rngs = _controlplane_build(args)
    cp.start()
    outcome = {"ok": True, "issues": []}

    def roll():
        # first protect everything: one committed epoch
        yield cp.submit("query").done  # warm the façade
        while ck.committed_epoch < 0:
            yield sim.timeout(1.0)
        for node_id in range(args.nodes):
            before = cp.verified_migrations
            op = cp.submit("drain", node_id=node_id)
            yield op.done
            if op.state.value != "DONE":
                outcome["ok"] = False
                outcome["issues"].append(
                    f"drain node {node_id}: {op.error}"
                )
                continue
            if cp.verified_migrations == before:
                outcome["ok"] = False
                outcome["issues"].append(
                    f"drain node {node_id}: no checksum-verified migration"
                )
        cp.audit("post-rolling-maintenance")
        cp.stop()

    sim.run_processes(roll(), until=args.nodes * 1000.0)
    print(_controlplane_summary(cp))
    bad_audits = [r for r in cp.audits if not r.ok]
    print(f"rolled {args.nodes} nodes; audits: {len(cp.audits)} "
          f"({len(bad_audits)} with fatal findings)")
    for issue in outcome["issues"]:
        print(f"  {issue}")
    return 0 if outcome["ok"] and not bad_audits else 1


def _cmd_controlplane_status(args: argparse.Namespace) -> int:
    """Short managed run, then print the coordinator's world view."""
    sim, cluster, ck, cp, rngs = _controlplane_build(args)
    cp.start()

    def run():
        yield sim.timeout(args.duration)
        cp.stop()

    sim.run_processes(run(), until=args.duration * 10)
    status = cp.status()
    print(render_table(
        ["field", "value"],
        [[k, str(v)] for k, v in status.items()],
        title=f"controlplane status after {args.duration:.0f}s",
    ))
    return 0


def _cmd_controlplane(args: argparse.Namespace) -> int:
    return {
        "run": _cmd_controlplane_run,
        "drain": _cmd_controlplane_drain,
        "status": _cmd_controlplane_status,
    }[args.cp_command](args)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .cluster import measure_xor_bandwidth

    bw = measure_xor_bandwidth(args.size, repeats=args.repeats)
    print(f"streaming XOR bandwidth: {format_bytes(bw)}/s")
    print(f"model input: ClusterModel(memory_xor_bandwidth={bw:.3g})")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_campaign_flags(sp: argparse.ArgumentParser) -> None:
    """``--jobs/--store/--no-resume`` — shared by campaign-backed commands."""
    sp.add_argument("--jobs", type=_positive_int, default=1,
                    help="parallel worker processes (1 = inline)")
    sp.add_argument("--store", default=None,
                    help="result-store directory (enables caching/resume)")
    sp.add_argument("--no-resume", action="store_true",
                    help="ignore cached results in the store")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="DVDC paper reproduction toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    f5 = sub.add_parser("fig5", help="reproduce Fig. 5 analytically")
    f5.add_argument("--mtbf", type=float, default=3.0, help="cluster MTBF, hours")
    f5.add_argument("--job", type=float, default=48.0, help="job length, hours")
    f5.add_argument("--nodes", type=int, default=4)
    f5.add_argument("--vms-per-node", type=int, default=3)
    f5.add_argument("--dirty-rate", type=float, default=2e5,
                    help="per-VM dirty rate, bytes/s")
    f5.add_argument("--plot", action="store_true", help="ASCII curve")
    f5.add_argument("--scheme", nargs="*", default=None, metavar="SPEC",
                    help="compare coding schemes analytically instead of "
                         "running the campaign; bare --scheme sweeps "
                         "xor, rdp, rs-8-2 and rep-3")
    f5.add_argument("--window", type=float, default=300.0,
                    help="scheme sweep: degraded-window length, seconds")
    _add_campaign_flags(f5)
    f5.set_defaults(func=_cmd_fig5)

    ep = sub.add_parser("epoch", help="run one checkpoint epoch")
    ep.add_argument("--arch", choices=["dvdc", "diskful", "checkpoint-node",
                                       "firstshot"], default="dvdc")
    ep.add_argument("--nodes", type=int, default=4)
    ep.add_argument("--vms-per-node", type=int, default=3)
    ep.add_argument("--seed", type=int, default=0)
    ep.set_defaults(func=_cmd_epoch)

    jb = sub.add_parser("job", help="end-to-end checkpointed job")
    jb.add_argument("--method", choices=["dvdc", "diskful"], default="dvdc")
    jb.add_argument("--work", type=float, default=4.0, help="hours")
    jb.add_argument("--interval", type=float, default=600.0, help="seconds")
    jb.add_argument("--node-mtbf", type=float, default=6.0, help="hours")
    jb.add_argument("--repair", type=float, default=30.0, help="seconds")
    jb.add_argument("--seeds", type=int, default=3)
    jb.add_argument("--overlap", action="store_true")
    jb.set_defaults(func=_cmd_job)

    stu = sub.add_parser("study", help="paired multi-method comparison")
    stu.add_argument("--methods", nargs="+",
                     default=["dvdc", "diskful"],
                     help="dvdc diskful dvdc_rdp checkpoint_node first_shot; "
                          "append +overlap for latency-hiding execution")
    stu.add_argument("--work", type=float, default=4.0, help="hours")
    stu.add_argument("--interval", type=float, default=600.0, help="seconds")
    stu.add_argument("--node-mtbf", type=float, default=6.0, help="hours")
    stu.add_argument("--repair", type=float, default=30.0, help="seconds")
    stu.add_argument("--seeds", type=int, default=5)
    stu.add_argument("--nodes", type=int, default=4)
    stu.add_argument("--vms-per-node", type=int, default=3)
    stu.add_argument("--full", action="store_true",
                     help="full-image capture instead of incremental")
    _add_campaign_flags(stu)
    stu.set_defaults(func=_cmd_study)

    va = sub.add_parser("validate", help="equations vs Monte-Carlo")
    va.add_argument("--job", type=float, default=8.0, help="hours")
    va.add_argument("--overhead", type=float, default=120.0, help="T_ov, s")
    va.add_argument("--repair", type=float, default=60.0, help="T_r, s")
    va.add_argument("--runs", type=int, default=4000)
    va.add_argument("--seed", type=int, default=0)
    _add_campaign_flags(va)
    va.set_defaults(func=_cmd_validate)

    cp = sub.add_parser(
        "campaign",
        help="run an experiment campaign (parallel, resumable)",
    )
    cp.add_argument("preset", nargs="?", default="fig5",
                    choices=["fig5", "validate", "study"],
                    help="prebuilt campaign to run")
    cp.add_argument("--spec", default=None,
                    help="JSON sweep spec file (overrides the preset)")
    cp.add_argument("--points", type=int, default=240,
                    help="fig5: interval grid points")
    cp.add_argument("--runs", type=int, default=4000,
                    help="validate: Monte-Carlo runs per grid point")
    cp.add_argument("--seed", type=int, default=0,
                    help="validate: master seed")
    cp.add_argument("--seeds", type=int, default=3,
                    help="study: failure-trace seeds")
    cp.add_argument("--work", type=float, default=2.0,
                    help="study: job length, hours")
    _add_campaign_flags(cp)
    cp.set_defaults(func=_cmd_campaign)

    tr = sub.add_parser("trace", help="telemetry span timelines")
    trsub = tr.add_subparsers(dest="trace_command", required=True)
    te = trsub.add_parser(
        "export",
        help="run an instrumented scenario and export its trace",
    )
    te.add_argument("--format", choices=["chrome", "jsonl"], default="chrome",
                    help="chrome = Perfetto-loadable trace-event JSON; "
                         "jsonl = one event per line")
    te.add_argument("--out", default=None,
                    help="output path (default trace.json / trace.jsonl)")
    te.add_argument("--clock", choices=["sim", "wall"], default="sim",
                    help="chrome: which clock drives the timeline")
    _add_scenario_flags(te)
    te.set_defaults(func=_cmd_trace_export)

    me = sub.add_parser(
        "metrics",
        help="run an instrumented scenario and print its metrics",
    )
    me.add_argument("--format", choices=["prom", "table"], default="prom",
                    help="prom = Prometheus text exposition; table = summary")
    me.add_argument("--out", default=None,
                    help="write to a file instead of stdout (prom only)")
    _add_scenario_flags(me)
    me.set_defaults(func=_cmd_metrics)

    au = sub.add_parser(
        "audit",
        help="verify recoverability invariants (one-shot or fuzz)",
    )
    au.add_argument("--fuzz", action="store_true",
                    help="drive seeded adversarial fault schedules instead "
                         "of the single canonical failure")
    au.add_argument("--transient", action="store_true",
                    help="fuzz: widen the fault vocabulary to transient "
                         "kinds (link flap, slowed NIC, dropped transfers, "
                         "silent corruption) with retries + scrubbing on")
    au.add_argument("--heal", action="store_true",
                    help="run the spare-pool self-healing scenario instead "
                         "(permanent node loss, recover, reprotect)")
    au.add_argument("--spares", type=int, default=1,
                    help="heal: cold spare nodes to provision")
    au.add_argument("--layout", choices=["fig1", "fig3", "fig4", "all"],
                    default="all", help="which architecture(s) to audit")
    au.add_argument("--nodes", type=_positive_int, default=4)
    au.add_argument("--vms-per-node", type=_positive_int, default=3)
    au.add_argument("--seeds", type=_positive_int, default=25,
                    help="fuzz: independent schedules per layout")
    au.add_argument("--cycles", type=_positive_int, default=4,
                    help="checkpoint cycles per trial")
    au.add_argument("--max-faults", type=int, default=2,
                    help="fuzz: max node kills per schedule")
    au.add_argument("--budget", type=float, default=None,
                    help="fuzz: wall-clock seconds per layout")
    au.add_argument("--seed", type=int, default=0, help="base seed")
    au.add_argument("--heterogeneous", action="store_true",
                    help="mix VM memory sizes within groups")
    au.add_argument("--strategy", choices=["forked", "full", "incremental"],
                    default="forked", help="capture strategy for trials")
    au.add_argument("--scheme", default="xor",
                    help="coding scheme for trials: xor, rdp, rs-<k>-<m>, "
                         "rep-<n> (default xor)")
    au.add_argument("--geo", type=int, default=0, metavar="SITES",
                    help="geo mode: split the cluster into SITES failure "
                         "domains, add correlated whole-site kills to the "
                         "schedule, and classify fate vs bug tolerance-"
                         "aware (forces the fig4 layout)")
    au.add_argument("--geo-policy", choices=["geo-spread", "remus-async"],
                    default="geo-spread",
                    help="geo: placement policy under test")
    au.set_defaults(func=_cmd_audit)

    be = sub.add_parser("bench", help="performance benchmarks")
    besub = be.add_subparsers(dest="bench_command", required=True)
    bs = besub.add_parser(
        "scale",
        help="thousand-node scale sweep; optionally gate against a baseline",
    )
    bs.add_argument("--quick", action="store_true",
                    help="64-node point only (the CI perf-regression job)")
    bs.add_argument("--epochs", type=_positive_int, default=3,
                    help="checkpoint epochs per point")
    bs.add_argument("--ref-cap", type=float, default=20.0,
                    help="wall-clock cap for the reference allocator above "
                         "64 nodes, seconds")
    bs.add_argument("--write", action="store_true",
                    help="write the result JSON (see --out)")
    bs.add_argument("--out", default="BENCH_scale.json",
                    help="output path for --write")
    bs.add_argument("--check", default=None, metavar="BASELINE",
                    help="compare against a recorded BENCH_scale.json; exit 1 "
                         "if the incremental/reference speedup regressed")
    bs.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression for --check")
    bs.set_defaults(func=_cmd_bench_scale)

    bv = besub.add_parser(
        "serving",
        help="serving-path bench: 1.2M-request arrival generation "
             "(chunked == monolithic, bit-exact) + a pinned serving cell",
    )
    bv.add_argument("--quick", action="store_true",
                    help="skip the full-size serve cell (CI mode; the "
                         "arrival leg and quick cell still gate hard)")
    bv.add_argument("--write", action="store_true",
                    help="write the result JSON (see --out)")
    bv.add_argument("--out", default="BENCH_serving.json",
                    help="output path for --write")
    bv.add_argument("--check", default=None, metavar="BASELINE",
                    help="compare against a recorded BENCH_serving.json; "
                         "exit 1 on any digest/count/quantile change")
    bv.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional throughput regression "
                         "(warn-only) for --check")
    bv.set_defaults(func=_cmd_bench_serving)

    bg = besub.add_parser(
        "geo",
        help="georedundancy bench: policy survival matrix under a "
             "full-site outage + window-loss model corroboration",
    )
    bg.add_argument("--quick", action="store_true",
                    help="one seed and fewer Monte-Carlo runs (CI mode)")
    bg.add_argument("--write", action="store_true",
                    help="write the result JSON (see --out)")
    bg.add_argument("--out", default="BENCH_geo.json",
                    help="output path for --write")
    bg.set_defaults(func=_cmd_bench_geo)

    geo = sub.add_parser(
        "geo",
        help="multi-site georedundancy: one placement-policy cell or "
             "the three-policy survival study",
    )
    geosub = geo.add_subparsers(dest="geo_command", required=True)

    def _geo_common(sp) -> None:
        sp.add_argument("--nodes", type=_positive_int, default=12)
        sp.add_argument("--sites", type=_positive_int, default=3)
        sp.add_argument("--racks-per-site", type=_positive_int, default=2)
        sp.add_argument("--vms-per-node", type=_positive_int, default=1)
        sp.add_argument("--epochs", type=_positive_int, default=2)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--scheme", default="xor",
                        help="coding scheme: xor, rdp, rs-<k>-<m>, rep-<n>")
        sp.add_argument("--wan-bandwidth", type=float, default=12.5e6,
                        help="WAN uplink bandwidth, bytes/s")
        sp.add_argument("--wan-latency", type=float, default=20e-3,
                        help="WAN round-trip latency, seconds")
        sp.add_argument("--kill-site", type=int, default=-1,
                        help="site to fail after the last commit "
                             "(-1 = worst for the layout; use --no-kill "
                             "for a fault-free run)")
        sp.add_argument("--no-kill", dest="kill_site",
                        action="store_const", const=None,
                        help="fault-free run (no site outage)")
        sp.add_argument("--lag-epochs", type=_positive_int, default=1,
                        help="remus-async: final epochs still inside the "
                             "replication lag window when the site dies")

    gr = geosub.add_parser(
        "run", help="one cell: a single policy through the site outage"
    )
    _geo_common(gr)
    gr.add_argument("--policy", default="geo-spread",
                    choices=["local-parity", "geo-spread", "remus-async"])
    gr.set_defaults(func=_cmd_geo_run)

    gs = geosub.add_parser(
        "study",
        help="three-policy survival matrix over shared seeds",
    )
    _geo_common(gs)
    gs.add_argument("--policies", nargs="+",
                    default=["local-parity", "geo-spread", "remus-async"])
    gs.add_argument("--seeds", type=_positive_int, default=2)
    _add_campaign_flags(gs)
    gs.set_defaults(func=_cmd_geo_study)

    sv = sub.add_parser(
        "serving",
        help="checkpoint-protected request serving: one cell or a "
             "paired policy study",
    )
    svsub = sv.add_subparsers(dest="serving_command", required=True)

    def _serving_common(sp) -> None:
        sp.add_argument("--rate", type=float, default=240.0,
                        help="open-loop arrival rate, requests/s")
        sp.add_argument("--requests", type=_positive_int, default=60_000,
                        help="total requests in the stream")
        sp.add_argument("--service-mean", type=float, default=0.02,
                        help="mean PS service demand, seconds")
        sp.add_argument("--dist", choices=["exponential", "lognormal"],
                        default="exponential", help="service demand shape")
        sp.add_argument("--nodes", type=_positive_int, default=4)
        sp.add_argument("--vms-per-node", type=_positive_int, default=2)
        sp.add_argument("--node-mtbf", type=float, default=0.0,
                        help="per-node MTBF, seconds (0 = no crashes)")
        sp.add_argument("--repair", type=float, default=20.0,
                        help="node repair time, seconds")
        sp.add_argument("--slo", type=float, default=0.25,
                        help="p99 SLO for the SLA controller, seconds")

    sr = svsub.add_parser(
        "run", help="one serving cell under a chosen protection policy"
    )
    _serving_common(sr)
    sr.add_argument("--policy", default="checkpoint",
                    choices=["baseline", "checkpoint", "checkpoint_sla",
                             "clone2"])
    sr.add_argument("--interval", type=float, default=None,
                    help="override the policy's checkpoint interval, s")
    sr.add_argument("--seed", type=int, default=0)
    sr.add_argument("--metrics", action="store_true",
                    help="print the telemetry summary table after the run")
    sr.set_defaults(func=_cmd_serving_run)

    ss = svsub.add_parser(
        "study",
        help="paired policy comparison over shared arrival+failure traces",
    )
    _serving_common(ss)
    ss.add_argument("--policies", nargs="+",
                    default=["baseline", "checkpoint", "checkpoint_sla",
                             "clone2"])
    ss.add_argument("--seeds", type=_positive_int, default=3)
    _add_campaign_flags(ss)
    ss.set_defaults(func=_cmd_serving_study)

    cpl = sub.add_parser(
        "controlplane",
        help="always-on cluster coordinator: soak, rolling drain, status",
    )
    cplsub = cpl.add_subparsers(dest="cp_command", required=True)

    def _cpl_common(sp, nodes: int) -> None:
        sp.add_argument("--nodes", type=_positive_int, default=nodes,
                        help="managed (VM-hosting) nodes")
        sp.add_argument("--vms-per-node", type=_positive_int, default=2)
        sp.add_argument("--spares", type=int, default=2,
                        help="cold spare nodes for the healer")
        sp.add_argument("--group-size", type=_positive_int, default=4)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--repair-time", type=float, default=10.0,
                        help="node downtime after a fence before rejoin")
        sp.add_argument("--maintenance-seconds", type=float, default=0.5,
                        help="hold time of a drained node")

    cr = cplsub.add_parser(
        "run",
        help="seeded churn soak: concurrent ops under transient faults "
             "and strict audits",
    )
    _cpl_common(cr, nodes=12)
    cr.add_argument("--ops", type=_positive_int, default=500,
                    help="operations to submit")
    cr.add_argument("--mean-gap", type=float, default=0.5,
                    help="mean seconds between submissions")
    cr.add_argument("--fault-rate", type=float, default=0.002,
                    help="transient faults per node-second")
    cr.add_argument("--no-faults", dest="faults", action="store_false",
                    help="disable the transient fault injector")
    cr.set_defaults(func=_cmd_controlplane, faults=True)

    cd = cplsub.add_parser(
        "drain",
        help="rolling maintenance: drain+maintain+rejoin every node",
    )
    _cpl_common(cd, nodes=64)
    cd.set_defaults(func=_cmd_controlplane)

    cs = cplsub.add_parser("status", help="short managed run + status table")
    _cpl_common(cs, nodes=8)
    cs.add_argument("--duration", type=float, default=20.0,
                    help="sim seconds to run before the snapshot")
    cs.set_defaults(func=_cmd_controlplane)

    ca = sub.add_parser("calibrate", help="measure host XOR bandwidth")
    ca.add_argument("--size", type=int, default=1 << 24, help="buffer bytes")
    ca.add_argument("--repeats", type=int, default=3)
    ca.set_defaults(func=_cmd_calibrate)
    return p


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
