"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
fig5
    Reproduce the paper's headline figure analytically and print the
    optima table (optionally the ASCII curve).
epoch
    Run one checkpoint epoch of a chosen architecture on a simulated
    cluster and print the cost accounting.
job
    Run an end-to-end checkpointed job with failure injection and print
    the realized completion statistics.
study
    Paired multi-method comparison over shared failure traces.
validate
    Corroborate the Section V equations against Monte-Carlo.
calibrate
    Measure this host's streaming XOR bandwidth (the model's
    ``memory_xor_bandwidth`` input).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import ascii_plot, format_bytes, format_seconds, render_table
from .failures import Exponential, FailureInjector, FailureSchedule
from .model import ClusterModel, fig5
from .workloads import CheckpointedJob, paper_scenario, scaled_scenario

__all__ = ["main", "build_parser"]


def _cmd_fig5(args: argparse.Namespace) -> int:
    cluster = ClusterModel(
        n_nodes=args.nodes,
        vms_per_node=args.vms_per_node,
        vm_dirty_rate=args.dirty_rate,
    )
    result = fig5(
        lam=1.0 / (args.mtbf * 3600.0),
        T=args.job * 3600.0,
        cluster=cluster,
    )
    rows = []
    for s in (result.diskful, result.diskless):
        rows.append([
            s.method,
            format_seconds(s.optimum.interval),
            format_seconds(s.optimum.overhead_at_optimum),
            f"{s.min_ratio:.4f}",
            f"{s.overhead_ratio * 100:.2f}%",
        ])
    print(render_table(
        ["method", "optimal interval", "T_ov", "E[T]/T", "overhead"],
        rows,
        title=(
            f"Fig. 5 @ MTBF {args.mtbf:g} h, job {args.job:g} h, "
            f"{args.nodes} nodes x {args.vms_per_node} VMs"
        ),
    ))
    print(f"\ndiskless reduces expected completion time by "
          f"{result.reduction * 100:.1f}%")
    if args.plot:
        mask = result.diskful.ratios < 2.0
        print()
        print(ascii_plot(
            [
                ("diskless", result.diskless.intervals[mask],
                 result.diskless.ratios[mask]),
                ("diskful", result.diskful.intervals[mask],
                 result.diskful.ratios[mask]),
            ],
            logx=True,
            marks=[
                (result.diskless.optimum.interval, result.diskless.min_ratio),
                (result.diskful.optimum.interval, result.diskful.min_ratio),
            ],
        ))
    return 0


def _cmd_epoch(args: argparse.Namespace) -> int:
    from .checkpoint import DiskfulCheckpointer
    from .core import checkpoint_node, dvdc, first_shot

    sc = scaled_scenario(
        args.nodes, args.vms_per_node, seed=args.seed, functional=False
    )
    if args.arch == "dvdc":
        ck = dvdc(sc.cluster)
    elif args.arch == "diskful":
        ck = DiskfulCheckpointer(sc.cluster)
    elif args.arch == "checkpoint-node":
        # vacate the last node for parity duty
        node = args.nodes - 1
        for vm in list(sc.cluster.vms_on(node)):
            sc.cluster.node(node).evict(vm)
            del sc.cluster.vms[vm.vm_id]
        ck = checkpoint_node(sc.cluster, node_id=node)
    elif args.arch == "firstshot":
        for node in range(args.nodes):
            extra = sc.cluster.vms_on(node)[1:] if node < args.nodes - 1 else (
                sc.cluster.vms_on(node)
            )
            for vm in extra:
                sc.cluster.node(node).evict(vm)
                del sc.cluster.vms[vm.vm_id]
        ck = first_shot(sc.cluster)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.arch)

    out = {}

    def proc():
        out["r"] = yield from ck.run_cycle()

    sc.sim.run_processes(proc())
    r = out["r"]
    rows = [[
        args.arch,
        len(sc.cluster.all_vms),
        format_seconds(r.overhead),
        format_seconds(r.latency),
        format_bytes(r.network_bytes),
    ]]
    print(render_table(
        ["architecture", "VMs", "overhead", "latency", "traffic"],
        rows,
        title="one checkpoint epoch",
    ))
    xor = getattr(r, "xor_seconds_by_node", None)
    if xor:
        print("parity work by node: "
              + ", ".join(f"{n}: {format_seconds(t)}" for n, t in sorted(xor.items())))
    return 0


def _cmd_job(args: argparse.Namespace) -> int:
    from .checkpoint import DiskfulCheckpointer, IncrementalCapture
    from .core import dvdc

    work = args.work * 3600.0
    rows = []
    for seed in range(args.seeds):
        sc = paper_scenario(seed=seed, functional=True)
        rng = sc.rngs.stream("failures")
        schedule = FailureSchedule.draw(
            rng, Exponential(1.0 / (args.node_mtbf * 3600.0)),
            sc.cluster.n_nodes, horizon=work * 10, repair_time=args.repair,
        )
        injector = FailureInjector(sc.sim, sc.cluster.n_nodes, schedule=schedule)
        if args.method == "dvdc":
            ck = dvdc(sc.cluster, strategy=IncrementalCapture())
        else:
            ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(
            sc.cluster, ck, work=work, interval=args.interval,
            injector=injector, repair_time=args.repair, overlap=args.overlap,
        )
        injector.start()
        proc = job.start()
        sc.sim.run(until=work * 50)
        if proc.ok is False:
            raise proc.value
        r = job.result
        rows.append([
            seed,
            "yes" if r.completed else "LOST",
            f"{r.time_ratio:.3f}",
            r.n_failures,
            r.n_recoveries,
            format_seconds(r.checkpoint_time),
            format_seconds(r.lost_work),
        ])
    print(render_table(
        ["seed", "completed", "T/T_ideal", "failures", "recoveries",
         "ckpt time", "lost work"],
        rows,
        title=(
            f"{args.method} job: {args.work:g} h work, interval "
            f"{args.interval:g} s, node MTBF {args.node_mtbf:g} h"
            + (", overlapped" if args.overlap else "")
        ),
    ))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .experiments import MethodSpec, PairedJobStudy

    methods = []
    for name in args.methods:
        overlap = name.endswith("+overlap")
        base = name.removesuffix("+overlap")
        methods.append(MethodSpec(base, incremental=not args.full,
                                  overlap=overlap, label=name))
    study = PairedJobStudy(
        methods=methods,
        work=args.work * 3600.0,
        interval=args.interval,
        node_mtbf=args.node_mtbf * 3600.0,
        repair_time=args.repair,
        seeds=args.seeds,
        n_nodes=args.nodes,
        vms_per_node=args.vms_per_node,
    )
    outcome = study.run()
    print(outcome.summary_table())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .model import estimate_expected_time, expected_time_with_overhead

    rng = np.random.default_rng(args.seed)
    T = args.job * 3600.0
    rows = []
    worst = 0.0
    for mtbf_h in (0.5, 1.0, 2.0, 4.0):
        lam = 1.0 / (mtbf_h * 3600.0)
        N = max(60.0, (2 * args.overhead / lam) ** 0.5)
        analytic = expected_time_with_overhead(lam, T, N, args.overhead, args.repair)
        mc = estimate_expected_time(
            rng, lam, T, N, args.overhead, args.repair, n_runs=args.runs
        )
        err = abs(mc.mean - analytic) / analytic
        worst = max(worst, err)
        rows.append([
            f"{mtbf_h:g}h",
            format_seconds(N),
            format_seconds(analytic),
            format_seconds(mc.mean),
            f"{err * 100:.2f}%",
            "yes" if mc.within(analytic) else "NO",
        ])
    print(render_table(
        ["MTBF", "interval", "closed form", "Monte-Carlo", "rel err",
         "within 3 sigma"],
        rows,
        title=f"Section V equations vs Monte-Carlo ({args.runs} runs each)",
    ))
    return 0 if worst < 0.05 else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .cluster import measure_xor_bandwidth

    bw = measure_xor_bandwidth(args.size, repeats=args.repeats)
    print(f"streaming XOR bandwidth: {format_bytes(bw)}/s")
    print(f"model input: ClusterModel(memory_xor_bandwidth={bw:.3g})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="DVDC paper reproduction toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    f5 = sub.add_parser("fig5", help="reproduce Fig. 5 analytically")
    f5.add_argument("--mtbf", type=float, default=3.0, help="cluster MTBF, hours")
    f5.add_argument("--job", type=float, default=48.0, help="job length, hours")
    f5.add_argument("--nodes", type=int, default=4)
    f5.add_argument("--vms-per-node", type=int, default=3)
    f5.add_argument("--dirty-rate", type=float, default=2e5,
                    help="per-VM dirty rate, bytes/s")
    f5.add_argument("--plot", action="store_true", help="ASCII curve")
    f5.set_defaults(func=_cmd_fig5)

    ep = sub.add_parser("epoch", help="run one checkpoint epoch")
    ep.add_argument("--arch", choices=["dvdc", "diskful", "checkpoint-node",
                                       "firstshot"], default="dvdc")
    ep.add_argument("--nodes", type=int, default=4)
    ep.add_argument("--vms-per-node", type=int, default=3)
    ep.add_argument("--seed", type=int, default=0)
    ep.set_defaults(func=_cmd_epoch)

    jb = sub.add_parser("job", help="end-to-end checkpointed job")
    jb.add_argument("--method", choices=["dvdc", "diskful"], default="dvdc")
    jb.add_argument("--work", type=float, default=4.0, help="hours")
    jb.add_argument("--interval", type=float, default=600.0, help="seconds")
    jb.add_argument("--node-mtbf", type=float, default=6.0, help="hours")
    jb.add_argument("--repair", type=float, default=30.0, help="seconds")
    jb.add_argument("--seeds", type=int, default=3)
    jb.add_argument("--overlap", action="store_true")
    jb.set_defaults(func=_cmd_job)

    stu = sub.add_parser("study", help="paired multi-method comparison")
    stu.add_argument("--methods", nargs="+",
                     default=["dvdc", "diskful"],
                     help="dvdc diskful dvdc_rdp checkpoint_node first_shot; "
                          "append +overlap for latency-hiding execution")
    stu.add_argument("--work", type=float, default=4.0, help="hours")
    stu.add_argument("--interval", type=float, default=600.0, help="seconds")
    stu.add_argument("--node-mtbf", type=float, default=6.0, help="hours")
    stu.add_argument("--repair", type=float, default=30.0, help="seconds")
    stu.add_argument("--seeds", type=int, default=5)
    stu.add_argument("--nodes", type=int, default=4)
    stu.add_argument("--vms-per-node", type=int, default=3)
    stu.add_argument("--full", action="store_true",
                     help="full-image capture instead of incremental")
    stu.set_defaults(func=_cmd_study)

    va = sub.add_parser("validate", help="equations vs Monte-Carlo")
    va.add_argument("--job", type=float, default=8.0, help="hours")
    va.add_argument("--overhead", type=float, default=120.0, help="T_ov, s")
    va.add_argument("--repair", type=float, default=60.0, help="T_r, s")
    va.add_argument("--runs", type=int, default=4000)
    va.add_argument("--seed", type=int, default=0)
    va.set_defaults(func=_cmd_validate)

    ca = sub.add_parser("calibrate", help="measure host XOR bandwidth")
    ca.add_argument("--size", type=int, default=1 << 24, help="buffer bytes")
    ca.add_argument("--repeats", type=int, default=3)
    ca.set_defaults(func=_cmd_calibrate)
    return p


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
