"""Storage substrate: disks and the shared NAS checkpoint store."""

from .disk import DEFAULT_DISK_BANDWIDTH, DEFAULT_SEEK_TIME, Disk, DiskSpec
from .nas import NAS, StorageError, StoredObject

__all__ = [
    "Disk",
    "DiskSpec",
    "DEFAULT_DISK_BANDWIDTH",
    "DEFAULT_SEEK_TIME",
    "NAS",
    "StoredObject",
    "StorageError",
]
