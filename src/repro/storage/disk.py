"""Disk model: seek latency plus sequential bandwidth, one spindle.

The disk is the component the paper singles out as "the main component
that contributes to checkpointing overhead" (Section II-B2, citing
Plank).  The model is intentionally simple — positioning time plus
streaming time, FIFO service — because checkpoint images are large
sequential writes for which rotational detail is noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import NULL_TRACER, Resource, Simulator, Tracer
from ..telemetry import probe_of

__all__ = ["DiskSpec", "Disk"]

#: 7.2k RPM nearline drive, ~2011 vintage (the paper's era).
DEFAULT_DISK_BANDWIDTH = 120e6  # bytes/second sequential
DEFAULT_SEEK_TIME = 8e-3  # seconds


@dataclass(frozen=True)
class DiskSpec:
    """Static performance parameters of a drive (or array).

    ``bandwidth`` is sequential throughput in bytes/second; ``seek_time``
    is the per-operation positioning cost; ``channels`` models an array
    that can service that many operations concurrently at full bandwidth
    each (a simple RAID-0/NVRAM-cache abstraction).
    """

    bandwidth: float = DEFAULT_DISK_BANDWIDTH
    seek_time: float = DEFAULT_SEEK_TIME
    channels: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")

    def service_time(self, nbytes: float) -> float:
        """Time to service one request of ``nbytes`` with no queueing."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.seek_time + nbytes / self.bandwidth


class Disk:
    """A simulated drive with FIFO queueing across ``channels`` servers.

    Use from a process::

        yield from disk.write(nbytes)
        data_time = yield from disk.read(nbytes)
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec | None = None,
        name: str = "disk",
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.spec = spec or DiskSpec()
        self.name = name
        self.tracer = tracer
        self._probe = probe_of(tracer)
        self._servers = Resource(sim, capacity=self.spec.channels)
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.ops = 0

    def _io(self, nbytes: float, kind: str):
        enqueued = self.sim.now
        if self._probe.enabled:
            self._probe.gauge_set(
                "repro_disk_queue_depth", self.queue_length,
                help="Requests waiting for a disk channel",
                disk=self.name,
            )
        req = self._servers.request()
        yield req
        start = self.sim.now
        try:
            yield self.sim.timeout(self.spec.service_time(nbytes))
        finally:
            self._servers.release()
        self.ops += 1
        if kind == "write":
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
        self.tracer.emit(
            self.sim.now, f"disk.{kind}", disk=self.name, nbytes=nbytes,
            queued=start - self.sim.now + self.spec.service_time(nbytes),
        )
        if self._probe.enabled:
            self._probe.observe(
                "repro_disk_io_seconds", self.sim.now - enqueued,
                help="Disk request queue + service time, by disk and op",
                disk=self.name, op=kind,
            )
            self._probe.count(
                "repro_disk_bytes_total", nbytes,
                help="Disk bytes transferred, by disk and op",
                disk=self.name, op=kind,
            )
        return self.sim.now - start

    def write(self, nbytes: float):
        """Process generator: blocks for queueing + service time."""
        return self._io(nbytes, "write")

    def read(self, nbytes: float):
        """Process generator: blocks for queueing + service time."""
        return self._io(nbytes, "read")

    @property
    def queue_length(self) -> int:
        return self._servers.queue_length
