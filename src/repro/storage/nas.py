"""Shared network-attached storage.

The NAS is the disk-full baseline's checkpoint sink: every VM's image
crosses the NAS ingress link (serialized — see
:mod:`repro.network.topology`) and then is written to the NAS disk
array.  The NAS also keeps a *catalog* of stored checkpoint objects so
restores are functional, not just timed: the diskful baseline restore
path reads the object back and hands the caller the stored payload.

Payloads are optional.  In timing-only experiments callers store sizes;
in functional tests they store real ``bytes``/arrays and get them back
bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry import probe_of
from .disk import Disk, DiskSpec

__all__ = ["StoredObject", "NAS", "StorageError"]


class StorageError(RuntimeError):
    """Catalog misuse: missing object, duplicate version, etc."""


@dataclass
class StoredObject:
    """One checkpoint object in the NAS catalog."""

    key: str
    version: int
    size: float
    stored_at: float
    payload: Any = None


class NAS:
    """Shared checkpoint store = disk array + object catalog.

    The *network* half of a NAS transfer lives in the topology (flows to
    ``nas.rx``); this class charges the *disk* half and maintains the
    catalog.  Keeping them separate lets the baseline pipeline overlap
    network and disk stages exactly as a real streaming copy would.
    """

    def __init__(
        self,
        sim: Simulator,
        disk_spec: DiskSpec | None = None,
        capacity_bytes: float | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.disk = Disk(sim, disk_spec, name="nas.disk", tracer=tracer)
        self.capacity_bytes = capacity_bytes
        self.tracer = tracer
        self._probe = probe_of(tracer)
        self._catalog: dict[str, StoredObject] = {}
        self.bytes_stored = 0.0

    def _sync_gauges(self) -> None:
        self._probe.gauge_set(
            "repro_nas_objects", len(self._catalog),
            help="Objects in the NAS catalog",
        )
        self._probe.gauge_set(
            "repro_nas_stored_bytes", self.bytes_stored,
            help="Resident bytes in the NAS catalog",
        )

    # ------------------------------------------------------------------
    # timed operations (process generators)
    # ------------------------------------------------------------------
    def store(self, key: str, size: float, payload: Any = None,
              stored_size: float | None = None):
        """Process: write ``size`` bytes to the array, then commit to
        the catalog.  Returns the :class:`StoredObject`.

        ``stored_size`` is the resident size of the resulting object
        when it differs from the bytes written — e.g. an incremental
        delta consolidated server-side into a full image (the disk pays
        for the delta, the catalog holds the full image).

        Versions are monotonic per key; storing over an existing key
        replaces it (checkpoint k supersedes k-1) but keeps the version
        counter advancing so stale readers can detect replacement.
        """
        resident = size if stored_size is None else stored_size
        if self.capacity_bytes is not None:
            projected = self.bytes_stored + resident
            if key in self._catalog:
                projected -= self._catalog[key].size
            if projected > self.capacity_bytes:
                raise StorageError(
                    f"NAS full: {projected:.3g} > capacity {self.capacity_bytes:.3g}"
                )
        yield from self.disk.write(size)
        return self.commit(key, resident, payload)

    def fetch(self, key: str):
        """Process: read the object back from the array; returns it."""
        obj = self.lookup(key)
        yield from self.disk.read(obj.size)
        self.tracer.emit(self.sim.now, "nas.fetch", key=key, size=obj.size)
        self._probe.count("repro_nas_ops_total", help="NAS catalog operations",
                          op="fetch")
        self._probe.count("repro_nas_bytes_total", obj.size,
                          help="NAS bytes moved, by operation", op="fetch")
        return obj

    # ------------------------------------------------------------------
    # instantaneous catalog operations
    # ------------------------------------------------------------------
    def commit(self, key: str, size: float, payload: Any = None) -> StoredObject:
        """Catalog-only commit (when the disk time was charged elsewhere)."""
        prev = self._catalog.get(key)
        version = prev.version + 1 if prev else 0
        if prev:
            self.bytes_stored -= prev.size
        obj = StoredObject(key, version, float(size), self.sim.now, payload)
        self._catalog[key] = obj
        self.bytes_stored += size
        self.tracer.emit(self.sim.now, "nas.store", key=key, size=size, version=version)
        self._probe.count("repro_nas_ops_total", help="NAS catalog operations",
                          op="store")
        self._probe.count("repro_nas_bytes_total", size,
                          help="NAS bytes moved, by operation", op="store")
        self._sync_gauges()
        return obj

    def lookup(self, key: str) -> StoredObject:
        try:
            return self._catalog[key]
        except KeyError:
            raise StorageError(f"no object {key!r} in NAS catalog") from None

    def contains(self, key: str) -> bool:
        return key in self._catalog

    def delete(self, key: str) -> None:
        obj = self.lookup(key)
        del self._catalog[key]
        self.bytes_stored -= obj.size
        self._probe.count("repro_nas_ops_total", help="NAS catalog operations",
                          op="delete")
        self._sync_gauges()

    def keys(self) -> list[str]:
        return sorted(self._catalog)

    def __len__(self) -> int:
        return len(self._catalog)
