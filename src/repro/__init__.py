"""repro — Distributed Virtual Diskless Checkpointing (DVDC).

A from-scratch reproduction of *"Distributed Virtual Diskless
Checkpointing: A Highly Fault Tolerant Scheme for Virtualized
Clusters"* (Eckart, He, Wu, Aderholdt, Han, Scott — IPPS 2012):
a simulated virtualized cluster substrate, the DVDC orthogonal-RAID
checkpoint protocol with XOR / row-diagonal parity, the disk-full and
Remus baselines, and the Section V analytical model with Monte-Carlo
corroboration.

Quick start::

    from repro import paper_scenario, dvdc, fig5

    # analytical Fig. 5 (the paper's headline result)
    result = fig5()
    print(result.reduction)          # ≈ 0.18–0.19

    # a functional cluster with bit-exact parity recovery
    sc = paper_scenario(seed=1)
    ck = dvdc(sc.cluster)
    sc.sim.run_processes(ck.run_cycle())

Subpackages: ``repro.sim`` (discrete-event engine), ``repro.cluster``
(VMs/nodes/hypervisors), ``repro.network`` / ``repro.storage``
(fluid-flow links, NAS), ``repro.failures``, ``repro.migration``,
``repro.checkpoint`` (capture strategies + baselines), ``repro.core``
(the DVDC contribution), ``repro.model`` (Section V), ``repro.workloads``
and ``repro.analysis``.
"""

from .checkpoint import (
    DiskfulCheckpointer,
    ForkedCapture,
    FullCapture,
    IncrementalCapture,
    RemusModel,
    RemusPair,
)
from .cluster import ClusterSpec, VirtualCluster
from .core import (
    DisklessCheckpointer,
    GroupLayout,
    RaidGroup,
    RDPCode,
    XorCode,
    checkpoint_node,
    dvdc,
    first_shot,
    layout_dvdc,
    validate_layout,
)
from .failures import Exponential, FailureInjector, FailureSchedule, Weibull
from .model import (
    ClusterModel,
    Fig5Result,
    expected_time_no_checkpoint,
    expected_time_with_overhead,
    fig5,
    find_optimal_interval,
    young_interval,
)
from .sim import RngRegistry, Simulator, Tracer
from .workloads import CheckpointedJob, JobResult, paper_scenario, scaled_scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sim
    "Simulator",
    "RngRegistry",
    "Tracer",
    # cluster
    "VirtualCluster",
    "ClusterSpec",
    # failures
    "Exponential",
    "Weibull",
    "FailureInjector",
    "FailureSchedule",
    # checkpointing
    "DiskfulCheckpointer",
    "ForkedCapture",
    "FullCapture",
    "IncrementalCapture",
    "RemusModel",
    "RemusPair",
    # core (DVDC)
    "DisklessCheckpointer",
    "GroupLayout",
    "RaidGroup",
    "XorCode",
    "RDPCode",
    "dvdc",
    "first_shot",
    "checkpoint_node",
    "layout_dvdc",
    "validate_layout",
    # model
    "ClusterModel",
    "fig5",
    "Fig5Result",
    "expected_time_no_checkpoint",
    "expected_time_with_overhead",
    "find_optimal_interval",
    "young_interval",
    # workloads
    "CheckpointedJob",
    "JobResult",
    "paper_scenario",
    "scaled_scenario",
]
