"""Registered task kinds — the functions campaign workers execute.

A task kind is a top-level (hence picklable) function ``fn(params,
seed) -> dict`` plus a ``version`` tag.  The tag is part of every task's
content hash: bump it when the function's semantics change and cached
results for that kind — and only that kind — are invalidated.

Built-in kinds cover the repo's three quantitative workloads:

``fig5_point``
    One (method, interval) point of the Fig. 5 expected-time-ratio
    curve.  Purely deterministic — identical math to
    :func:`repro.model.ratio.sweep_intervals`'s inner loop, so a
    campaign-assembled curve is bit-identical to the serial one.
``mc_chunk``
    One deterministically seeded chunk of the Section V Monte-Carlo
    (:func:`repro.model.montecarlo.simulate_completion_times_chunk`),
    returning mergeable moments rather than raw samples.
``study_cell``
    One (method, trace seed) cell of a paired job study, running the
    full cluster simulation and returning the ``JobResult`` fields.
``scale_digests``
    One perf scale-scenario run, returning its bit-exactness digests —
    the golden determinism tests' vehicle for proving campaign
    ``--jobs N`` byte-stability.
``serving_cell``
    One (policy, trace seed) cell of a paired serving study: an
    open-loop request stream served from the cluster under one
    protection policy, returning latency quantiles and loss accounting
    plus a bit-exact completion digest.
``image_snapshot``
    One scale-scenario run returning the committed checkpoint *page
    arrays* of selected VMs.  The array payload rides the zero-copy
    shared-memory transport (:mod:`repro.campaign.shm`) under
    ``--jobs N`` instead of the pool's pickle channel; the accompanying
    checksums prove the bytes arrived exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "TaskKind",
    "register_task",
    "get_kind",
    "task_kinds",
    "run_fig5_point",
    "run_mc_chunk",
    "run_scale_digests",
    "run_study_cell",
    "run_serving_cell_task",
    "run_image_snapshot",
]


@dataclass(frozen=True)
class TaskKind:
    """A registered task function with its code-version tag."""

    name: str
    fn: Callable[[dict, int | None], dict]
    version: str


_REGISTRY: dict[str, TaskKind] = {}


def register_task(name: str, version: str = "1"):
    """Decorator registering ``fn(params, seed) -> dict`` as a kind."""

    def deco(fn):
        if name in _REGISTRY:
            raise ValueError(f"task kind {name!r} already registered")
        _REGISTRY[name] = TaskKind(name=name, fn=fn, version=str(version))
        return fn

    return deco


def get_kind(name: str) -> TaskKind:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown task kind {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def task_kinds() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in kinds


def _cluster_from(params: dict):
    from ..model import ClusterModel

    return ClusterModel(**(params.get("cluster") or {}))


def _method_cfg(params: dict, method: str):
    from ..model import DISKFUL_PAPER, DISKLESS_PAPER, MethodConfig

    cfg = params.get(f"{method}_cfg")
    if cfg is not None:
        return MethodConfig(**cfg)
    return DISKFUL_PAPER if method == "diskful" else DISKLESS_PAPER


@register_task("fig5_point", version="1")
def run_fig5_point(params: dict, seed: int | None) -> dict:
    """Expected-time ratio at one checkpoint interval.

    params: method ("diskful"|"diskless"), interval, lam, T, optional
    cluster overrides and per-method cfg overrides, optional T_r.
    """
    from ..model import expected_time_with_overhead, overhead_function

    method = params["method"]
    interval = float(params["interval"])
    lam = float(params["lam"])
    T = float(params["T"])
    cluster = _cluster_from(params)
    ov = overhead_function(cluster, method, _method_cfg(params, method))
    repair = float(params.get("T_r", cluster.repair_time))
    ratio = expected_time_with_overhead(
        lam, T, interval, ov(interval), repair
    ) / T
    return {"method": method, "interval": interval, "ratio": ratio}


@register_task("mc_chunk", version="1")
def run_mc_chunk(params: dict, seed: int | None) -> dict:
    """One chunk of the segment-game Monte-Carlo, as mergeable moments.

    params: lam, T, N (null = no checkpointing), T_ov, T_r, n_runs,
    chunk_runs, chunk_index, final_checkpoint, master_seed.  The chunk
    seed is derived from ``master_seed`` + ``chunk_index`` exactly as
    :func:`simulate_completion_times_chunked` does, so campaign output
    merges bit-identically with the serial chunked estimator.
    """
    from ..model import chunk_moments, chunk_sizes, simulate_completion_times_chunk

    index = int(params["chunk_index"])
    sizes = chunk_sizes(
        int(params["n_runs"]), int(params.get("chunk_runs", 512))
    )
    if not 0 <= index < len(sizes):
        raise ValueError(f"chunk_index {index} out of range (of {len(sizes)})")
    N = params.get("N")
    samples = simulate_completion_times_chunk(
        int(params["master_seed"]),
        index,
        sizes[index],
        float(params["lam"]),
        float(params["T"]),
        None if N is None else float(N),
        float(params.get("T_ov", 0.0)),
        float(params.get("T_r", 0.0)),
        bool(params.get("final_checkpoint", True)),
    )
    return {"chunk_index": index, **chunk_moments(samples)}


@register_task("scale_digests", version="1")
def run_scale_digests(params: dict, seed: int | None) -> dict:
    """Digest one perf scale-scenario run (see :mod:`repro.perf.scale`).

    params: n_nodes, epochs, allocator, cow, plus any other
    :class:`~repro.perf.ScaleConfig` field.  Returns the scenario's
    bit-exactness digests; the golden determinism tests run this kind
    under ``--jobs 1`` and ``--jobs 4`` and require identical output.
    """
    from ..perf import ScaleConfig, run_scale_point

    cfg = ScaleConfig(**{**params, "trace": True})
    result = run_scale_point(cfg, collect_digests=True)
    return {
        "n_nodes": cfg.n_nodes,
        "allocator": cfg.allocator,
        "cow": cfg.cow,
        "events": result["events"],
        "sim_time": result["sim_time"].hex(),
        "digests": result["digests"],
    }


@register_task("image_snapshot", version="1")
def run_image_snapshot(params: dict, seed: int | None) -> dict:
    """Committed checkpoint image bytes of selected VMs after a scale run.

    params: any :class:`~repro.perf.ScaleConfig` field, plus ``vm_ids``
    (list of VM ids; default ``[0]``).  Returns the raw page arrays —
    the payload the shared-memory transport exists for — keyed by VM id,
    with :func:`~repro.cluster.checksum.block_checksum` fingerprints so
    consumers can prove the zero-copy path delivered exact bytes.
    """
    from ..cluster.checksum import block_checksum
    from ..perf import ScaleConfig
    from ..perf.scale import _dirty_epoch, build_scale_scenario

    vm_ids = [int(v) for v in params.get("vm_ids", [0])]
    cfg = ScaleConfig(**{k: v for k, v in params.items() if k != "vm_ids"})
    sim, cluster, ckpt, rngs, tracer = build_scale_scenario(cfg)
    for _ in range(cfg.epochs):
        _dirty_epoch(cluster, rngs, cfg)
        proc = sim.process(ckpt.run_cycle())
        sim.run()
        if proc.ok is False:
            raise proc.value
    images: dict[str, object] = {}
    checksums: dict[str, int] = {}
    for vm_id in vm_ids:
        img = None
        for node in cluster.nodes:
            got = node.checkpoint_store.get(vm_id)
            if got is not None and got.payload is not None:
                img = got
                break
        if img is None:
            raise ValueError(f"no committed checkpoint for vm {vm_id}")
        payload = img.payload_flat()
        # copy: the committed buffer may be pool-recycled after this
        # task returns, and shared-memory publication needs stable bytes
        images[str(vm_id)] = payload.copy()
        checksums[str(vm_id)] = block_checksum(payload)
    return {
        "n_nodes": cfg.n_nodes,
        "epochs": cfg.epochs,
        "images": images,
        "checksums": checksums,
    }


@register_task("study_cell", version="1")
def run_study_cell(params: dict, seed: int | None) -> dict:
    """One (method, trace seed) cell of a paired job study.

    params: method {name, incremental, overlap, label}, trace_seed,
    work, interval, node_mtbf, repair_time, n_nodes, vms_per_node.
    Delegates to :class:`repro.experiments.PairedJobStudy` so the cell
    is the exact computation the serial study performs.
    """
    from dataclasses import asdict

    from ..experiments import MethodSpec, PairedJobStudy

    m = params["method"]
    spec = MethodSpec(
        name=m["name"],
        incremental=bool(m.get("incremental", True)),
        overlap=bool(m.get("overlap", False)),
        label=m.get("label"),
    )
    study = PairedJobStudy(
        methods=[spec],
        work=float(params["work"]),
        interval=float(params["interval"]),
        node_mtbf=float(params["node_mtbf"]),
        repair_time=float(params.get("repair_time", 30.0)),
        seeds=int(params["trace_seed"]) + 1,
        n_nodes=int(params.get("n_nodes", 4)),
        vms_per_node=int(params.get("vms_per_node", 3)),
    )
    outcome = study._run_cell(spec, int(params["trace_seed"]))
    return {
        "method": outcome.method,
        "trace_seed": outcome.seed,
        "result": asdict(outcome.result),
        "serving": outcome.serving,
    }


@register_task("serving_cell", version="1")
def run_serving_cell_task(params: dict, seed: int | None) -> dict:
    """One (policy, trace seed) cell of a paired serving study.

    params: policy (:class:`repro.serving.ServingPolicy` fields), load
    (:class:`repro.serving.ServingLoad` fields), trace_seed.  The cell
    is a deterministic function of its parameters — identical under any
    ``--jobs``, which the golden serving digests pin.
    """
    from ..serving.study import ServingLoad, ServingPolicy, run_serving_cell

    return run_serving_cell(
        ServingPolicy(**params["policy"]),
        ServingLoad(**params["load"]),
        int(params["trace_seed"]),
    )


@register_task("geo_cell", version="1")
def run_geo_cell(params: dict, seed: int | None) -> dict:
    """One (policy, seed) cell of the geo placement study.

    params: any :class:`~repro.geo.GeoConfig` field.  Trace is forced on
    so the flow digest is populated; the geo golden determinism tests
    run the full policy matrix under ``--jobs 1`` and ``--jobs 4`` and
    require byte-identical results.
    """
    from ..geo.study import GeoConfig, run_geo_point

    cfg = GeoConfig(**{**params, "trace": True})
    result = run_geo_point(cfg, collect_digests=True)
    result["sim_time"] = result["sim_time"].hex()
    return result
