"""Parallel, resumable execution of campaign tasks.

The runner fans independent :class:`~repro.campaign.spec.Task` units out
across a :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1``
runs inline with no pool).  Three invariants make ``--jobs N`` safe:

* **Seed discipline** — every task carries its own master seed, derived
  from parameter values at expansion time; workers never share or
  advance a common stream, so parallel results are bit-identical to
  serial ones.
* **Failure isolation** — task functions run inside a catch-all in the
  worker; an exception marks that task failed and the sweep continues.
* **Deterministic collection** — results are gathered and persisted in
  task-list order regardless of completion order, so stores, aggregated
  tables, and floating-point merges never depend on scheduling.

With a :class:`~repro.campaign.store.ResultStore` attached, completed
tasks are looked up by content hash first (``resume=True``), so
re-running a half-finished sweep executes only the missing tasks.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..telemetry import NULL_PROBE, Probe
from . import shm
from .spec import Task
from .store import ResultStore
from .tasks import get_kind

__all__ = [
    "TaskRun",
    "CampaignResult",
    "CampaignRunner",
    "execute_task",
    "execute_task_batch",
]


def execute_task(task_dict: dict, share_arrays: bool = False) -> dict:
    """Run one task in the current process; never raises.

    Top-level (hence picklable) worker entry point.  Returns
    ``{"ok": bool, "value": dict|None, "error": str|None, "elapsed": s}``.

    With ``share_arrays=True`` (the pool path), ndarray leaves of the
    result value are published into shared memory and replaced by
    pipe-sized markers (:mod:`repro.campaign.shm`), so page arrays never
    cross the worker→coordinator pickle channel.
    """
    start = time.perf_counter()
    try:
        task = Task.from_dict(task_dict)
        kind = get_kind(task.kind)
        value = kind.fn(task.params, task.seed)
        if share_arrays:
            value = shm.extract_arrays(value)
        return {
            "ok": True,
            "value": value,
            "error": None,
            "elapsed": time.perf_counter() - start,
        }
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return {
            "ok": False,
            "value": None,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed": time.perf_counter() - start,
        }


def execute_task_batch(task_dicts: list[dict], share_arrays: bool = False) -> list[dict]:
    """Run a contiguous batch of tasks in the current process.

    One pool submission per *batch* instead of per task: pickling and
    future bookkeeping cost ~ms per submission, which dominates when
    individual tasks run in tens of ms (the fig. 5 sweep's regime) and
    made ``--jobs 4`` slower than serial.  Each task still executes
    through :func:`execute_task`, so isolation and per-task seeding are
    unchanged.
    """
    return [execute_task(td, share_arrays) for td in task_dicts]


@dataclass(frozen=True)
class TaskRun:
    """Outcome of one task within a campaign run."""

    task: Task
    value: dict | None
    error: str | None = None
    cached: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """All task outcomes of one run, in task-list order."""

    runs: list[TaskRun] = field(default_factory=list)
    jobs: int = 1
    wall_time: float = 0.0

    @property
    def n_total(self) -> int:
        return len(self.runs)

    @property
    def n_cached(self) -> int:
        return sum(r.cached for r in self.runs)

    @property
    def n_executed(self) -> int:
        return sum(not r.cached for r in self.runs)

    @property
    def n_failed(self) -> int:
        return sum(not r.ok for r in self.runs)

    def values(self, kind: str | None = None) -> list[dict]:
        """Successful task values in task order."""
        return [
            r.value for r in self.runs
            if r.ok and (kind is None or r.task.kind == kind)
        ]

    def failures(self) -> list[TaskRun]:
        return [r for r in self.runs if not r.ok]

    def summary_table(self, title: str = "campaign") -> str:
        from ..analysis import render_table

        return render_table(
            ["tasks", "executed", "cached", "failed", "jobs", "wall clock"],
            [[
                self.n_total,
                self.n_executed,
                self.n_cached,
                self.n_failed,
                self.jobs,
                f"{self.wall_time:.2f}s",
            ]],
            title=title,
        )


class CampaignRunner:
    """Execute tasks with optional parallelism and result caching.

    ``jobs=1`` runs inline (no subprocess); ``jobs>1`` uses a process
    pool.  ``store=None`` disables caching; otherwise completed tasks
    are served from the store when ``resume`` and persisted after
    execution.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        resume: bool = True,
        probe: Probe | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.store = store
        self.jobs = jobs
        self.resume = resume
        self.probe = probe if probe is not None else NULL_PROBE

    @staticmethod
    def _chunk(pending: list[int], jobs: int) -> list[list[int]]:
        """Contiguous batches, ~4 per worker to keep the pool load-balanced."""
        size = max(1, math.ceil(len(pending) / (jobs * 4)))
        return [pending[i:i + size] for i in range(0, len(pending), size)]

    def run(self, tasks: Sequence[Task]) -> CampaignResult:
        start = time.perf_counter()
        probe = self.probe
        span = probe.span_begin(
            "campaign.run", 0.0, track="campaign",
            n_tasks=len(tasks), jobs=self.jobs,
        )
        outcomes: list[TaskRun | None] = [None] * len(tasks)

        pending: list[int] = []
        for i, task in enumerate(tasks):
            rec = None
            if self.store is not None and self.resume:
                rec = self.store.get(task.key)
            if rec is not None:
                outcomes[i] = TaskRun(
                    task=task,
                    value=rec["value"],
                    cached=True,
                    elapsed=float(rec.get("elapsed", 0.0)),
                )
            else:
                pending.append(i)

        if pending:
            if self.jobs == 1:
                raws = [execute_task(tasks[i].to_dict()) for i in pending]
            else:
                batches = self._chunk(pending, self.jobs)
                share = shm.SHM_AVAILABLE
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = [
                        pool.submit(
                            execute_task_batch,
                            [tasks[i].to_dict() for i in batch],
                            share,
                        )
                        for batch in batches
                    ]
                    raws = [raw for f in futures for raw in f.result()]
                if share:
                    # re-inflate shared-memory markers into real arrays;
                    # each segment is copied out once and unlinked here,
                    # so no shm state survives collection
                    for raw in raws:
                        if raw["value"] is not None:
                            raw["value"] = shm.restore_arrays(raw["value"])
            for i, raw in zip(pending, raws):
                outcomes[i] = TaskRun(
                    task=tasks[i],
                    value=raw["value"],
                    error=raw["error"],
                    elapsed=raw["elapsed"],
                )

        runs = [r for r in outcomes if r is not None]
        if self.store is not None:
            for r in runs:
                if r.ok and not r.cached:
                    self.store.put(r.task, r.value, r.elapsed)
        wall = time.perf_counter() - start
        if probe.enabled:
            busy = 0.0
            for r in runs:
                state = "cached" if r.cached else ("executed" if r.ok else "failed")
                probe.count(
                    "repro_campaign_tasks_total",
                    help="Campaign tasks, by kind and outcome",
                    kind=r.task.kind, state=state,
                )
                if not r.cached:
                    busy += r.elapsed
                    probe.observe(
                        "repro_campaign_task_seconds", r.elapsed,
                        help="Per-task execution time, by kind",
                        kind=r.task.kind,
                    )
            probe.gauge_set(
                "repro_campaign_workers", self.jobs,
                help="Worker processes in the last campaign run",
            )
            probe.gauge_set(
                "repro_campaign_worker_utilization",
                busy / (self.jobs * wall) if wall > 0 else 0.0,
                help="Busy fraction of the worker pool (task CPU / jobs*wall)",
            )
        probe.span_end(span, wall, n_pending=len(pending))
        return CampaignResult(
            runs=runs, jobs=self.jobs, wall_time=wall
        )
