"""Zero-copy array transport for campaign workers.

Task kinds that produce page arrays (checkpoint images, parity bytes)
used to ship them back to the coordinator through the process pool's
pickle channel: every byte was serialized in the worker, copied through
a pipe, and deserialized in the coordinator before the
:class:`~repro.campaign.store.ResultStore` ever saw the record.  For
image-sized payloads the pickle round-trip dominates task runtime.

This module moves the bytes through POSIX shared memory instead:

* the **worker** publishes each ndarray into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  replaces it in the result dict with a tiny :class:`ShmArrayRef`
  marker (:func:`extract_arrays`) — only the marker crosses the pipe;
* the **coordinator** attaches each segment, copies the bytes out once,
  and unlinks it (:func:`restore_arrays`), so the collected value holds
  ordinary ndarrays again and no segment outlives collection.

The transport is invisible to task functions — they return plain dicts
with ndarray leaves — and to consumers, who see the same dicts back.
Persistence stays JSON: :func:`strip_arrays` replaces ndarray leaves
with a ``{"__array__": {shape, dtype, crc32}}`` summary stub, which is
what the :class:`~repro.campaign.store.ResultStore` writes (raw page
bytes do not belong in an append-only JSONL cache; the fingerprint is
enough to audit a replayed task against its recorded ancestor).

If the platform offers no shared memory (``SHM_AVAILABLE`` is False),
:func:`extract_arrays` degrades to the identity and arrays travel the
old pickle path — slower, never wrong.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - import always succeeds on supported platforms
    from multiprocessing import shared_memory as _shm

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _shm = None
    SHM_AVAILABLE = False

__all__ = [
    "SHM_AVAILABLE",
    "ShmArrayRef",
    "share_array",
    "load_array",
    "extract_arrays",
    "restore_arrays",
    "strip_arrays",
    "has_arrays",
]

#: dict key marking a leaf that stands in for a shared-memory array
REF_KEY = "__shm_array__"
#: dict key marking a persisted (stripped) array summary
STUB_KEY = "__array__"


@dataclass(frozen=True)
class ShmArrayRef:
    """Pipe-sized stand-in for an ndarray living in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def to_dict(self) -> dict:
        return {"name": self.name, "shape": list(self.shape), "dtype": self.dtype}

    @classmethod
    def from_dict(cls, d: dict) -> "ShmArrayRef":
        return cls(
            name=str(d["name"]),
            shape=tuple(int(s) for s in d["shape"]),
            dtype=str(d["dtype"]),
        )


def share_array(arr: np.ndarray) -> ShmArrayRef:
    """Publish ``arr`` into a fresh shared-memory segment.

    The segment persists after the creating process closes its mapping —
    exactly what lets a pool worker exit while the coordinator still
    attaches.  The consumer is responsible for unlinking (via
    :func:`load_array` / :func:`restore_arrays`).
    """
    if not SHM_AVAILABLE:  # pragma: no cover - platform gate
        raise RuntimeError("shared memory is not available on this platform")
    arr = np.ascontiguousarray(arr)
    seg = _shm.SharedMemory(create=True, size=max(1, arr.nbytes))
    try:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        del view  # drop the buffer export before closing the mapping
        ref = ShmArrayRef(name=seg.name, shape=arr.shape, dtype=arr.dtype.str)
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    seg.close()
    return ref


def load_array(ref: ShmArrayRef, unlink: bool = True) -> np.ndarray:
    """Copy the referenced segment out into an ordinary ndarray.

    ``unlink=True`` (the default) removes the segment afterwards — the
    single-consumer handoff of the worker→coordinator path.
    """
    if not SHM_AVAILABLE:  # pragma: no cover - platform gate
        raise RuntimeError("shared memory is not available on this platform")
    seg = _shm.SharedMemory(name=ref.name)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        out = view.copy()
        del view
    finally:
        seg.close()
    if unlink:
        seg.unlink()
    return out


# ---------------------------------------------------------------------------
# recursive value transforms
# ---------------------------------------------------------------------------
def _map_leaves(value, fn):
    """Rebuild ``value`` with ``fn`` applied to every ndarray leaf."""
    if isinstance(value, np.ndarray):
        return fn(value)
    if isinstance(value, dict):
        return {k: _map_leaves(v, fn) for k, v in value.items()}
    if isinstance(value, list):
        return [_map_leaves(v, fn) for v in value]
    if isinstance(value, tuple):
        return tuple(_map_leaves(v, fn) for v in value)
    return value


def extract_arrays(value):
    """Worker side: swap every ndarray leaf for a shared-memory marker.

    Identity when shared memory is unavailable (arrays then ride the
    pickle path) or when the value holds no arrays.
    """
    if not SHM_AVAILABLE:
        return value
    return _map_leaves(value, lambda a: {REF_KEY: share_array(a).to_dict()})


def _is_ref(node) -> bool:
    return isinstance(node, dict) and set(node) == {REF_KEY}


def restore_arrays(value, unlink: bool = True):
    """Coordinator side: swap markers back for real ndarrays.

    Each referenced segment is copied out and (by default) unlinked, so
    after restoration no shared-memory state remains.
    """
    if isinstance(value, dict):
        if _is_ref(value):
            return load_array(ShmArrayRef.from_dict(value[REF_KEY]), unlink=unlink)
        return {k: restore_arrays(v, unlink) for k, v in value.items()}
    if isinstance(value, list):
        return [restore_arrays(v, unlink) for v in value]
    if isinstance(value, tuple):
        return tuple(restore_arrays(v, unlink) for v in value)
    return value


def strip_arrays(value):
    """Persistence side: replace ndarray leaves with JSON-safe summaries.

    The stub records shape, dtype, and a CRC-32 of the bytes — enough to
    audit a re-executed task against the cached record without storing
    megabytes of page data in the JSONL cache.
    """
    def stub(a: np.ndarray) -> dict:
        flat = np.ascontiguousarray(a).reshape(-1).view(np.uint8)
        return {STUB_KEY: {
            "shape": list(a.shape),
            "dtype": a.dtype.str,
            "nbytes": int(a.nbytes),
            "crc32": zlib.crc32(flat),
        }}

    return _map_leaves(value, stub)


def has_arrays(value) -> bool:
    """True when any leaf of ``value`` is an ndarray."""
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, dict):
        return any(has_arrays(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(has_arrays(v) for v in value)
    return False
