"""Prebuilt campaigns for the repo's quantitative artifacts.

Each ``*_sweep``/``*_tasks`` builder returns the task units of one
artifact; each ``run_*_campaign`` helper executes them through a
:class:`~repro.campaign.runner.CampaignRunner` and hands back both the
reassembled artifact and the :class:`CampaignResult` (counts, wall
clock).  The CLI subcommands, the campaign-backed benches, and
``examples/campaign_sweep.py`` all run through these, so there is one
definition of each campaign.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from ..failures.mtbf import PAPER_LAMBDA
from ..model import (
    DISKFUL_PAPER,
    DISKLESS_PAPER,
    PAPER_CLUSTER,
    PAPER_JOB_SECONDS,
    ClusterModel,
    MethodConfig,
    chunk_sizes,
)
from ..sim.rng import derive_seed
from ..telemetry import Probe
from .runner import CampaignResult, CampaignRunner
from .spec import Sweep, Task
from .store import ResultStore

__all__ = [
    "fig5_sweep",
    "validate_tasks",
    "study_sweep",
    "run_fig5_campaign",
    "run_validate_campaign",
    "run_study_campaign",
    "PRESETS",
]

#: Default MTBF grid of the ``validate`` command, hours.
VALIDATE_MTBF_HOURS = (0.5, 1.0, 2.0, 4.0)


def fig5_sweep(
    lam: float = PAPER_LAMBDA,
    T: float = PAPER_JOB_SECONDS,
    cluster: ClusterModel = PAPER_CLUSTER,
    diskful_cfg: MethodConfig = DISKFUL_PAPER,
    diskless_cfg: MethodConfig = DISKLESS_PAPER,
    intervals: np.ndarray | None = None,
    points: int = 240,
    name: str = "fig5",
) -> Sweep:
    """The Fig. 5 interval sweep as a deterministic campaign.

    The default grid matches :func:`repro.model.ratio.sweep_intervals`
    (240 log-spaced intervals up to T/2); ``points`` shrinks it for
    smoke runs.
    """
    if intervals is None:
        intervals = np.logspace(0, np.log10(T / 2.0), points)
    return Sweep(
        name=name,
        kind="fig5_point",
        base={
            "lam": lam,
            "T": T,
            "cluster": asdict(cluster),
            "diskful_cfg": asdict(diskful_cfg),
            "diskless_cfg": asdict(diskless_cfg),
        },
        grid={
            "interval": [float(x) for x in np.asarray(intervals)],
            "method": ["diskful", "diskless"],
        },
        seeded=False,
    )


def validate_tasks(
    T: float = 8 * 3600.0,
    T_ov: float = 120.0,
    T_r: float = 60.0,
    runs: int = 4000,
    seed: int = 0,
    mtbf_hours: tuple[float, ...] = VALIDATE_MTBF_HOURS,
    cases: list[tuple[float, float]] | None = None,
    chunk_runs: int = 512,
) -> tuple[list[dict], list[Task]]:
    """The VAL-MC grid as chunked Monte-Carlo tasks.

    Returns ``(cases, tasks)``: one case per grid point — with a
    per-case master seed derived from ``seed`` — and the flat task list
    (cases crossed with chunk indices).  By default the grid is
    ``mtbf_hours`` with the serial ``validate`` command's interval
    choice; pass explicit ``cases`` as ``(lam, N)`` pairs to pin both.
    """
    if cases is None:
        pairs = []
        for mtbf_h in mtbf_hours:
            lam = 1.0 / (mtbf_h * 3600.0)
            pairs.append((lam, max(60.0, (2 * T_ov / lam) ** 0.5)))
    else:
        pairs = [(float(lam), float(N)) for lam, N in cases]
    cases = []
    tasks = []
    for lam, N in pairs:
        mtbf_h = 1.0 / lam / 3600.0
        case = {
            "mtbf_h": mtbf_h,
            "lam": lam,
            "N": N,
            "master_seed": derive_seed(
                seed, f"validate/case/{lam!r}/{N!r}"
            ),
        }
        cases.append(case)
        for index in range(len(chunk_sizes(runs, chunk_runs))):
            tasks.append(Task(
                kind="mc_chunk",
                params={
                    "lam": lam,
                    "T": T,
                    "N": N,
                    "T_ov": T_ov,
                    "T_r": T_r,
                    "n_runs": runs,
                    "chunk_runs": chunk_runs,
                    "chunk_index": index,
                    "final_checkpoint": True,
                    "master_seed": case["master_seed"],
                },
            ))
    return cases, tasks


def study_sweep(
    methods: list[dict],
    work: float = 4 * 3600.0,
    interval: float = 600.0,
    node_mtbf: float = 6 * 3600.0,
    repair_time: float = 30.0,
    seeds: int = 5,
    n_nodes: int = 4,
    vms_per_node: int = 3,
    name: str = "study",
) -> Sweep:
    """A paired job study as one campaign cell per (method, trace seed).

    ``methods`` are dicts with the :class:`repro.experiments.MethodSpec`
    fields (``name``, optional ``incremental``/``overlap``/``label``).
    """
    return Sweep(
        name=name,
        kind="study_cell",
        base={
            "work": work,
            "interval": interval,
            "node_mtbf": node_mtbf,
            "repair_time": repair_time,
            "n_nodes": n_nodes,
            "vms_per_node": vms_per_node,
        },
        grid={
            "method": methods,
            "trace_seed": list(range(seeds)),
        },
        seeded=False,
    )


def _runner(
    jobs: int,
    store: ResultStore | str | None,
    resume: bool,
    probe: Probe | None = None,
):
    if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
        store = ResultStore(store)
    return CampaignRunner(store=store, jobs=jobs, resume=resume, probe=probe)


def run_fig5_campaign(
    jobs: int = 1,
    store: ResultStore | str | None = None,
    resume: bool = True,
    probe: Probe | None = None,
    **sweep_kwargs,
):
    """Execute the Fig. 5 sweep; returns ``(Fig5Result, CampaignResult)``."""
    from .aggregate import fig5_result_from_values

    sweep = fig5_sweep(**sweep_kwargs)
    result = _runner(jobs, store, resume, probe).run(sweep.expand())
    _raise_if_all_failed(result)
    base = sweep.base
    fig = fig5_result_from_values(
        result.values("fig5_point"),
        lam=base["lam"],
        T=base["T"],
        cluster=ClusterModel(**base["cluster"]),
        diskful_cfg=MethodConfig(**base["diskful_cfg"]),
        diskless_cfg=MethodConfig(**base["diskless_cfg"]),
    )
    return fig, result


def run_validate_campaign(
    jobs: int = 1,
    store: ResultStore | str | None = None,
    resume: bool = True,
    probe: Probe | None = None,
    **task_kwargs,
):
    """Execute the VAL-MC grid.

    Returns ``(rows, CampaignResult)`` where each row is the case dict
    plus its merged ``estimate`` (:class:`MonteCarloEstimate`).
    """
    from .aggregate import mc_estimate_from_values

    cases, tasks = validate_tasks(**task_kwargs)
    result = _runner(jobs, store, resume, probe).run(tasks)
    _raise_if_all_failed(result)
    rows = []
    for case in cases:
        values = [
            r.value for r in result.runs
            if r.ok and r.task.kind == "mc_chunk"
            and r.task.params.get("master_seed") == case["master_seed"]
        ]
        rows.append({**case, "estimate": mc_estimate_from_values(values)})
    return rows, result


def run_study_campaign(
    jobs: int = 1,
    store: ResultStore | str | None = None,
    resume: bool = True,
    probe: Probe | None = None,
    **sweep_kwargs,
):
    """Execute a paired study; returns ``(StudyOutcome, CampaignResult)``."""
    from .aggregate import study_outcome_from_values

    sweep = study_sweep(**sweep_kwargs)
    result = _runner(jobs, store, resume, probe).run(sweep.expand())
    _raise_if_all_failed(result)
    outcome = study_outcome_from_values(
        result.values("study_cell"), work=sweep.base["work"]
    )
    return outcome, result


def _raise_if_all_failed(result: CampaignResult) -> None:
    if result.n_total and result.n_failed == result.n_total:
        first = result.failures()[0]
        raise RuntimeError(
            f"every campaign task failed; first error: {first.error}"
        )


#: Preset name → the run helper the ``repro campaign`` CLI dispatches to.
PRESETS = {
    "fig5": run_fig5_campaign,
    "validate": run_validate_campaign,
    "study": run_study_campaign,
}
