"""Adapters from campaign task values back into analysis artifacts.

Campaign workers return plain dicts (they cross process boundaries and
live in the JSONL store); these functions reassemble them into the same
objects the serial code paths produce — :class:`Fig5Result`,
:class:`MonteCarloEstimate`, :class:`StudyOutcome` — so every existing
table/figure renderer works unchanged, and equality with the serial
path can be asserted bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..model import (
    DISKFUL_PAPER,
    DISKLESS_PAPER,
    ClusterModel,
    Fig5Result,
    Fig5Series,
    MethodConfig,
    MonteCarloEstimate,
    estimate_from_moments,
    find_optimal_interval,
    overhead_function,
)

__all__ = [
    "fig5_series_from_values",
    "fig5_result_from_values",
    "mc_estimate_from_values",
    "study_outcome_from_values",
]


def fig5_series_from_values(
    method: str,
    values: list[dict],
    lam: float,
    T: float,
    cluster: ClusterModel,
    cfg: MethodConfig | None = None,
    T_r: float | None = None,
) -> Fig5Series:
    """Rebuild one Fig. 5 curve from ``fig5_point`` task values.

    Points are taken in task order (the sweep's grid order), so the
    resulting arrays — and the optimum recomputed over the same bounds —
    are bit-identical to :func:`repro.model.ratio.sweep_intervals`.
    """
    points = [v for v in values if v["method"] == method]
    if not points:
        raise ValueError(f"no fig5_point values for method {method!r}")
    intervals = np.array([v["interval"] for v in points])
    ratios = np.array([v["ratio"] for v in points])
    ov = overhead_function(cluster, method, cfg)
    repair = cluster.repair_time if T_r is None else T_r
    optimum = find_optimal_interval(
        lam, T, ov, T_r=repair,
        bounds=(float(intervals[0]), float(intervals[-1])),
    )
    return Fig5Series(
        method=method, intervals=intervals, ratios=ratios, optimum=optimum
    )


def fig5_result_from_values(
    values: list[dict],
    lam: float,
    T: float,
    cluster: ClusterModel,
    diskful_cfg: MethodConfig = DISKFUL_PAPER,
    diskless_cfg: MethodConfig = DISKLESS_PAPER,
) -> Fig5Result:
    """Both curves plus headline comparisons, as :func:`repro.model.fig5`."""
    return Fig5Result(
        diskless=fig5_series_from_values(
            "diskless", values, lam, T, cluster, diskless_cfg
        ),
        diskful=fig5_series_from_values(
            "diskful", values, lam, T, cluster, diskful_cfg
        ),
        cluster=cluster,
        lam=lam,
        T=T,
    )


def mc_estimate_from_values(values: list[dict]) -> MonteCarloEstimate:
    """Merge ``mc_chunk`` values (sorted by chunk index) into an estimate.

    Sorting by ``chunk_index`` pins the floating-point accumulation
    order, so serial and parallel campaigns — and
    :func:`estimate_expected_time_chunked` — agree exactly.
    """
    return estimate_from_moments(
        sorted(values, key=lambda v: v["chunk_index"])
    )


def study_outcome_from_values(values: list[dict], work: float):
    """Rebuild a :class:`repro.experiments.StudyOutcome` from cell values."""
    from ..experiments import JobOutcome, StudyOutcome
    from ..workloads.app import JobResult

    outcome = StudyOutcome(work=work)
    for v in values:
        outcome.cells.append(JobOutcome(
            method=v["method"],
            seed=int(v["trace_seed"]),
            result=JobResult(**v["result"]),
        ))
    return outcome
