"""Declarative campaign specs: parameter sweeps expanded into tasks.

A :class:`Sweep` names a registered task kind, a dict of fixed ``base``
parameters, and a ``grid`` of axes to cross.  :meth:`Sweep.expand`
produces the cartesian product as independent :class:`Task` units, each
with its own deterministically derived master seed.  Seeds are derived
from the *parameter values*, not from enumeration order, so reordering
grid axes or adding points never perturbs existing tasks — the same
discipline :mod:`repro.sim.rng` applies to named streams.

Every task has a content-addressed :attr:`Task.key` — a BLAKE2 hash of
its kind, canonical-JSON parameters, seed, and the kind's code version
tag.  The key is what the :class:`~repro.campaign.store.ResultStore`
indexes by, which is what makes campaigns resumable: identical config +
identical code version ⇒ cache hit; any drift ⇒ recompute.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..sim.rng import derive_seed

__all__ = ["Task", "Sweep", "canonical_json", "task_key"]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def task_key(kind: str, params: dict, seed: int | None, version: str) -> str:
    """Content hash identifying one task's inputs and code version."""
    h = hashlib.blake2b(digest_size=16)
    h.update(canonical_json(
        {"kind": kind, "params": params, "seed": seed, "version": version}
    ).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class Task:
    """One independent unit of campaign work.

    ``params`` must be JSON-able (they are hashed canonically and cross
    process boundaries).  ``seed`` is the task's private master seed —
    ``None`` for purely deterministic kinds.  ``version`` is the task
    kind's code version tag; bumping it in the registry invalidates
    cached results for that kind only.
    """

    kind: str
    params: dict = field(default_factory=dict)
    seed: int | None = None
    version: str = "1"

    @property
    def key(self) -> str:
        return task_key(self.kind, self.params, self.seed, self.version)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "params": self.params,
            "seed": self.seed,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Task":
        return cls(
            kind=d["kind"],
            params=dict(d.get("params") or {}),
            seed=d.get("seed"),
            version=str(d.get("version", "1")),
        )


@dataclass(frozen=True)
class Sweep:
    """A named parameter sweep over one task kind.

    ``grid`` maps axis name → list of JSON-able values; axes are crossed
    in sorted-axis-name order with each axis's values in given order.
    ``replications`` repeats every grid point with a distinct
    ``replication`` parameter (and hence a distinct seed) — the
    Monte-Carlo axis.  ``seeded=False`` marks a purely deterministic
    kind: tasks carry ``seed=None`` instead of a derived master seed.
    """

    name: str
    kind: str
    base: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    replications: int = 1
    master_seed: int = 0
    seeded: bool = True

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        overlap = set(self.base) & set(self.grid)
        if overlap:
            raise ValueError(f"axes shadow base params: {sorted(overlap)}")

    def points(self) -> Iterator[dict]:
        """The grid's cartesian product (axis values only, no base)."""
        if not self.grid:
            yield {}
            return
        axes = sorted(self.grid)
        for values in itertools.product(*(self.grid[a] for a in axes)):
            yield dict(zip(axes, values))

    def n_tasks(self) -> int:
        n = self.replications
        for values in self.grid.values():
            n *= len(values)
        return n

    def seed_for(self, point: dict, replication: int) -> int:
        """Task seed from the point's *values* — order-insensitive."""
        return derive_seed(
            self.master_seed,
            f"{self.name}/{canonical_json(point)}/rep{replication}",
        )

    def expand(self, version: str | None = None) -> list[Task]:
        """All task units of this sweep, in deterministic order.

        ``version`` defaults to the registered version of ``kind``
        (looked up lazily to keep this module registry-free).
        """
        if version is None:
            from .tasks import get_kind

            version = get_kind(self.kind).version
        tasks = []
        for point in self.points():
            for rep in range(self.replications):
                params = {**self.base, **point}
                if self.replications > 1:
                    params["replication"] = rep
                tasks.append(Task(
                    kind=self.kind,
                    params=params,
                    seed=self.seed_for(point, rep) if self.seeded else None,
                    version=version,
                ))
        return tasks

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "base": self.base,
            "grid": self.grid,
            "replications": self.replications,
            "master_seed": self.master_seed,
            "seeded": self.seeded,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Sweep":
        return cls(
            name=d["name"],
            kind=d["kind"],
            base=dict(d.get("base") or {}),
            grid=dict(d.get("grid") or {}),
            replications=int(d.get("replications", 1)),
            master_seed=int(d.get("master_seed", 0)),
            seeded=bool(d.get("seeded", True)),
        )
