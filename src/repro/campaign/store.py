"""Content-addressed on-disk result cache — what makes campaigns resumable.

Layout: one directory per store holding ``results.jsonl``, an append-only
JSON-lines file.  Each line is a completed task record::

    {"key": "<task content hash>", "task": {...}, "value": {...},
     "elapsed": 0.0123}

The key is :func:`repro.campaign.spec.task_key` — a hash of the task's
kind, params, seed, and code-version tag — so a record is valid exactly
as long as its inputs and the producing code are unchanged.  Failed
tasks are never written; re-running a half-finished sweep therefore
executes only the missing (or previously failed) tasks.

Appending is atomic enough for our writer model: only the coordinating
process writes (workers return values to it), so no locking is needed.
Duplicate keys can appear if two campaigns race on one store; the last
line wins on load, which is harmless because equal keys imply equal
inputs.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Iterator

from .shm import has_arrays, strip_arrays
from .spec import Task

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL store indexed by task content hash.

    ``hits``/``misses`` count :meth:`get` outcomes since open — tests
    and the resume report use them to prove cached tasks were skipped.

    A crash mid-append can leave a truncated final line (or any write
    race, a corrupt interior one).  Loading skips such lines with a
    warning instead of failing — losing one cached record costs a single
    re-execution, while refusing to open the store would brick resume
    for the whole campaign.  When damage is found the file is compacted
    in place to only the valid records, so later appends start from a
    clean line boundary rather than gluing onto a partial record.
    """

    FILENAME = "results.jsonl"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME
        self.hits = 0
        self.misses = 0
        self.skipped_lines = 0
        self._index: dict[str, dict] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        dirty = bool(text) and not text.endswith("\n")
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                rec = json.loads(stripped)
                key = rec["key"]
            except (ValueError, TypeError, KeyError):
                self.skipped_lines += 1
                dirty = True
                warnings.warn(
                    f"{self.path}:{lineno}: skipping corrupt record "
                    "(truncated append?)",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            if key in self._index:
                # superseded duplicate (two campaigns racing on one
                # store): last line wins, and compaction must not keep
                # the stale ancestor around forever
                dirty = True
            self._index[key] = rec
        if dirty:
            # one line per key, last occurrence winning — rewritten from
            # the index so the compacted file matches what get() serves
            tmp = self.path.with_suffix(".jsonl.tmp")
            tmp.write_text(
                "".join(
                    json.dumps(rec, sort_keys=True) + "\n"
                    for rec in self._index.values()
                ),
                encoding="utf-8",
            )
            tmp.replace(self.path)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, counting hit or miss."""
        rec = self._index.get(key)
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
        return rec

    def peek(self, key: str) -> dict | None:
        """Like :meth:`get` but without touching the counters."""
        return self._index.get(key)

    def put(self, task: Task, value: dict, elapsed: float = 0.0) -> dict:
        """Persist one completed task; returns the stored record.

        Array leaves (checkpoint pages, parity bytes from shared-memory
        task kinds) are replaced by ``{"__array__": {shape, dtype,
        crc32}}`` summary stubs — raw page data does not belong in an
        append-only JSONL cache, and the fingerprint suffices to audit a
        re-executed task against its cached record.  Cache hits
        therefore return the stub form.
        """
        if has_arrays(value):
            value = strip_arrays(value)
        rec = {
            "key": task.key,
            "task": task.to_dict(),
            "value": value,
            "elapsed": float(elapsed),
        }
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._index[rec["key"]] = rec
        return rec

    def records(self, kind: str | None = None) -> list[dict]:
        """All records, optionally filtered by task kind."""
        recs = self._index.values()
        if kind is None:
            return list(recs)
        return [r for r in recs if r["task"]["kind"] == kind]

    def write_report(self, path: str | Path, name: str, payload: dict) -> dict:
        """Merge ``payload`` under ``name`` into a JSON report file.

        Used by the campaign-backed benches to accumulate entries in
        ``BENCH_campaign.json`` across runs; returns the full document.

        The write is atomic (temp file + ``os.replace``): a crash — or a
        concurrent reader — mid-write can never observe a truncated or
        half-old document, only the previous or the new one.
        """
        path = Path(path)
        doc: dict = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (ValueError, OSError):
                doc = {}
        doc[name] = payload
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return doc
