"""Parallel, resumable experiment-campaign orchestration.

The subsystem that turns the repo's serial parameter loops into
independent task units with deterministic seeding, fans them across
cores, caches completed results content-addressed on disk, and feeds
them back into the existing analysis tables and figures::

    from repro.campaign import CampaignRunner, ResultStore, fig5_sweep
    from repro.campaign import fig5_result_from_values

    sweep = fig5_sweep()
    runner = CampaignRunner(store=ResultStore("campaign_store"), jobs=4)
    result = runner.run(sweep.expand())        # resumable: hits are free

See ``docs/campaigns.md`` for the spec format, seeding guarantees,
store layout, and resume semantics.
"""

from .aggregate import (
    fig5_result_from_values,
    fig5_series_from_values,
    mc_estimate_from_values,
    study_outcome_from_values,
)
from .presets import (
    PRESETS,
    fig5_sweep,
    run_fig5_campaign,
    run_study_campaign,
    run_validate_campaign,
    study_sweep,
    validate_tasks,
)
from .runner import (
    CampaignResult,
    CampaignRunner,
    TaskRun,
    execute_task,
    execute_task_batch,
)
from .shm import (
    SHM_AVAILABLE,
    ShmArrayRef,
    extract_arrays,
    has_arrays,
    load_array,
    restore_arrays,
    share_array,
    strip_arrays,
)
from .spec import Sweep, Task, canonical_json, task_key
from .store import ResultStore
from .tasks import TaskKind, get_kind, register_task, task_kinds

__all__ = [
    "Task",
    "Sweep",
    "canonical_json",
    "task_key",
    "ResultStore",
    "CampaignRunner",
    "CampaignResult",
    "TaskRun",
    "execute_task",
    "execute_task_batch",
    "TaskKind",
    "register_task",
    "get_kind",
    "task_kinds",
    "fig5_sweep",
    "validate_tasks",
    "study_sweep",
    "run_fig5_campaign",
    "run_validate_campaign",
    "run_study_campaign",
    "PRESETS",
    "fig5_result_from_values",
    "fig5_series_from_values",
    "mc_estimate_from_values",
    "study_outcome_from_values",
    "SHM_AVAILABLE",
    "ShmArrayRef",
    "share_array",
    "load_array",
    "extract_arrays",
    "restore_arrays",
    "strip_arrays",
    "has_arrays",
]
