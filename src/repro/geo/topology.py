"""Hierarchical multi-site topologies: node → rack → pod → site.

PVC's cluster-architecture documentation treats georedundancy as a
first-class layout: a cluster spans sites connected by WAN links of
high latency and low bandwidth, and racks/pods within a site share
power and switching.  This module models that hierarchy on top of the
flat :class:`~repro.network.topology.SwitchedTopology`:

* :class:`GeoSpec` — the static hierarchy: contiguous near-equal
  partition of nodes into sites, racks within sites, pods grouping
  racks.  Every level projects to a
  :class:`~repro.failures.domains.FailureDomainMap`, so the existing
  domain-aware placement, correlated schedules, and layout audits apply
  unchanged at any level.
* :class:`GeoTopology` — a :class:`SwitchedTopology` whose cross-site
  paths traverse per-site WAN uplinks (``site{j}.wan.tx`` /
  ``site{j}.wan.rx``) with independent up/down state.  **A single-site
  spec adds zero links**, so the network — link creation order, link
  indices, max-min allocation, every float — is bit-identical to the
  non-geo path; the differential A/B test in
  ``tests/test_properties_geo.py`` pins that.

The cluster facade stays import-free of this module:
:func:`geo_cluster_spec` packages a :class:`GeoSpec` into a
:class:`~repro.cluster.cluster.ClusterSpec` via its ``topology_factory``
seam.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import ClusterSpec
from ..failures.domains import FailureDomainMap
from ..network.link import NetworkError
from ..network.topology import (
    DEFAULT_LATENCY,
    DEFAULT_NAS_BANDWIDTH,
    GBE_BANDWIDTH,
    SwitchedTopology,
)
from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry import probe_of

__all__ = [
    "GEO_LEVELS",
    "GeoSpec",
    "GeoTopology",
    "geo_cluster_spec",
    "DEFAULT_WAN_BANDWIDTH",
    "DEFAULT_WAN_LATENCY",
]

#: hierarchy levels a :class:`GeoSpec` can project to a domain map
GEO_LEVELS = ("node", "rack", "pod", "site")

#: Inter-site uplink bandwidth default, bytes/second (~100 Mb/s leased
#: line — an order of magnitude under the 1 GbE intra-site NICs).
DEFAULT_WAN_BANDWIDTH = 12.5e6
#: One-way inter-site latency default, seconds (metro-to-metro WAN).
DEFAULT_WAN_LATENCY = 20e-3


def _partition(total: int, parts: int) -> list[int]:
    """Near-equal contiguous partition sizes (first ``total % parts``
    parts get one extra element — ``np.array_split`` order)."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


@dataclass(frozen=True)
class GeoSpec:
    """Static node → rack → pod → site hierarchy of a cluster.

    Nodes are partitioned contiguously and near-equally into
    ``n_sites`` sites; each site's nodes into ``racks_per_site`` racks;
    each site's racks into ``pods_per_site`` pods.  All ids are dense
    (0..k-1 at every level), so each level is directly a valid
    :class:`~repro.failures.domains.FailureDomainMap`.
    """

    n_nodes: int
    n_sites: int = 1
    racks_per_site: int = 1
    pods_per_site: int = 1
    wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH
    wan_latency: float = DEFAULT_WAN_LATENCY

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"need >= 1 node, got {self.n_nodes}")
        if self.n_sites < 1:
            raise ValueError(f"need >= 1 site, got {self.n_sites}")
        if self.n_sites > self.n_nodes:
            raise ValueError(
                f"{self.n_sites} sites need at least that many nodes, "
                f"got {self.n_nodes}"
            )
        if self.racks_per_site < 1:
            raise ValueError("racks_per_site must be >= 1")
        if not (1 <= self.pods_per_site <= self.racks_per_site):
            raise ValueError(
                f"pods_per_site must be in 1..racks_per_site "
                f"({self.racks_per_site}), got {self.pods_per_site}"
            )
        min_site = min(_partition(self.n_nodes, self.n_sites))
        if self.racks_per_site > min_site:
            raise ValueError(
                f"racks_per_site {self.racks_per_site} exceeds the smallest "
                f"site's {min_site} node(s) — some rack would be empty"
            )
        if self.wan_bandwidth <= 0:
            raise ValueError("wan_bandwidth must be > 0")
        if self.wan_latency < 0:
            raise ValueError("wan_latency must be >= 0")
        # precompute assignments once (frozen dataclass: set via object)
        site, rack, pod = [], [], []
        node = 0
        for s, site_size in enumerate(_partition(self.n_nodes, self.n_sites)):
            rack_sizes = _partition(site_size, self.racks_per_site)
            for local_rack, rack_size in enumerate(rack_sizes):
                local_pod = local_rack * self.pods_per_site // self.racks_per_site
                for _ in range(rack_size):
                    site.append(s)
                    rack.append(s * self.racks_per_site + local_rack)
                    pod.append(s * self.pods_per_site + local_pod)
                    node += 1
        object.__setattr__(self, "_site", tuple(site))
        object.__setattr__(self, "_rack", tuple(rack))
        object.__setattr__(self, "_pod", tuple(pod))

    # -- lookup --------------------------------------------------------
    def site_of(self, node_id: int) -> int:
        return self._site[node_id]

    def rack_of(self, node_id: int) -> int:
        return self._rack[node_id]

    def pod_of(self, node_id: int) -> int:
        return self._pod[node_id]

    def nodes_in_site(self, site: int) -> list[int]:
        if not (0 <= site < self.n_sites):
            raise ValueError(f"site {site} out of range 0..{self.n_sites - 1}")
        return [n for n in range(self.n_nodes) if self._site[n] == site]

    @property
    def n_racks(self) -> int:
        return self.n_sites * self.racks_per_site

    @property
    def n_pods(self) -> int:
        return self.n_sites * self.pods_per_site

    def domain_map(self, level: str = "site") -> FailureDomainMap:
        """The hierarchy level as a dense failure-domain map.

        ``"node"`` is the identity map (each node its own domain) —
        handy for differential tests where domain-aware code must
        reduce to the node-orthogonal behavior.
        """
        if level == "node":
            return FailureDomainMap(tuple(range(self.n_nodes)))
        if level == "rack":
            return FailureDomainMap(self._rack)
        if level == "pod":
            return FailureDomainMap(self._pod)
        if level == "site":
            return FailureDomainMap(self._site)
        raise ValueError(f"unknown level {level!r}; one of {GEO_LEVELS}")


class GeoTopology(SwitchedTopology):
    """Multi-site switch fabric with per-site WAN uplinks.

    Intra-site paths are exactly the flat switched fabric.  A
    cross-site flow additionally traverses the source site's WAN egress
    and the destination site's WAN ingress — two shared low-bandwidth
    links where all inter-site traffic of a site pair contends, each
    charged half the one-way ``wan_latency``.  The NAS stays homed at
    site 0 (the paper's shared-NAS baseline), so remote sites reach it
    over the WAN too.

    With ``geo.n_sites == 1`` no WAN links are created at all: the
    :class:`~repro.network.link.Network` is link-for-link identical to
    a plain :class:`SwitchedTopology`, which keeps the geo layer
    bit-transparent when unused.
    """

    def __init__(
        self,
        sim: Simulator,
        geo: GeoSpec,
        node_bandwidth: float = GBE_BANDWIDTH,
        nas_bandwidth: float = DEFAULT_NAS_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        core_bandwidth: float | None = None,
        tracer: Tracer = NULL_TRACER,
        allocator: str = "incremental",
    ):
        super().__init__(
            sim, geo.n_nodes, node_bandwidth=node_bandwidth,
            nas_bandwidth=nas_bandwidth, latency=latency,
            core_bandwidth=core_bandwidth, tracer=tracer, allocator=allocator,
        )
        self.geo = geo
        self._probe = probe_of(tracer)
        self.wan_tx: list = []
        self.wan_rx: list = []
        if geo.n_sites > 1:
            per_hop = geo.wan_latency / 2.0
            for s in range(geo.n_sites):
                self.wan_tx.append(self.network.add_link(
                    f"site{s}.wan.tx", geo.wan_bandwidth, per_hop
                ))
                self.wan_rx.append(self.network.add_link(
                    f"site{s}.wan.rx", geo.wan_bandwidth, per_hop
                ))
        #: bytes handed to cross-site flows (requested, not delivered)
        self.wan_bytes = 0.0

    # -- paths ---------------------------------------------------------
    def _wan_hops(self, src_site: int, dst_site: int) -> list:
        return [self.wan_tx[src_site], self.wan_rx[dst_site]]

    def node_to_node(self, src: int, dst: int) -> list:
        path = super().node_to_node(src, dst)
        if self.wan_tx:
            s, d = self.geo.site_of(src), self.geo.site_of(dst)
            if s != d:
                path[1:1] = self._wan_hops(s, d)
        return path

    def node_to_nas(self, src: int) -> list:
        path = super().node_to_nas(src)
        if self.wan_tx:
            s = self.geo.site_of(src)
            if s != 0:
                path[1:1] = self._wan_hops(s, 0)
        return path

    def nas_to_node(self, dst: int) -> list:
        path = super().nas_to_node(dst)
        if self.wan_tx:
            d = self.geo.site_of(dst)
            if d != 0:
                path[-1:-1] = self._wan_hops(0, d)
        return path

    # -- accounting ----------------------------------------------------
    def transfer(self, src: int, dst: int, size: float, label: str | None = None):
        flow = super().transfer(src, dst, size, label)
        if self.wan_tx and self.geo.site_of(src) != self.geo.site_of(dst):
            self.wan_bytes += size
            self._probe.count(
                "repro_geo_wan_bytes_total", size,
                help="Bytes handed to cross-site WAN flows",
                src_site=self.geo.site_of(src), dst_site=self.geo.site_of(dst),
            )
        return flow

    # -- WAN health (correlated-fault surface) -------------------------
    def site_wan_up(self, site: int) -> bool:
        self._check_site(site)
        return self.wan_tx[site].up and self.wan_rx[site].up

    def set_site_wan_up(self, site: int, up: bool, reason: str = "wan outage") -> int:
        """Flap a site's WAN uplink pair down or up; cross-site flows
        through it fail with a transient error (retryable).  Returns the
        number of flows torn down."""
        self._check_site(site)
        torn = self.network.set_link_up(self.wan_tx[site], up, reason)
        torn += self.network.set_link_up(self.wan_rx[site], up, reason)
        return torn

    def _check_site(self, site: int) -> None:
        if not self.wan_tx:
            raise NetworkError("single-site topology has no WAN links")
        if not (0 <= site < self.geo.n_sites):
            raise NetworkError(
                f"site {site} out of range 0..{self.geo.n_sites - 1}"
            )


def geo_cluster_spec(geo: GeoSpec, **spec_kwargs) -> ClusterSpec:
    """A :class:`~repro.cluster.cluster.ClusterSpec` whose topology is a
    :class:`GeoTopology` over ``geo``.

    ``spec_kwargs`` pass through to :class:`ClusterSpec` (bandwidths,
    latency, allocator, ...); ``n_nodes`` is taken from ``geo``.
    """
    spec_kwargs.pop("n_nodes", None)

    def factory(sim: Simulator, spec: ClusterSpec, tracer: Tracer):
        return GeoTopology(
            sim, geo,
            node_bandwidth=spec.node_bandwidth,
            nas_bandwidth=spec.nas_bandwidth,
            latency=spec.latency,
            tracer=tracer,
            allocator=spec.allocator,
        )

    return ClusterSpec(
        n_nodes=geo.n_nodes, topology_factory=factory, **spec_kwargs
    )
