"""Correlated multi-level failure injection for geo clusters.

:func:`repro.failures.domains.draw_domain_schedule` already models one
correlated level (whole racks).  A geo cluster has several at once:
independent node crashes, rack losses, and — rarest but costliest —
full-site outages.  :func:`draw_geo_schedule` superimposes a seeded
renewal process per level into one replayable
:class:`~repro.failures.injector.FailureSchedule`, and
:class:`GeoEvent` carries the level/domain annotation the study runner
and fuzzer use to classify outcomes (a site loss beyond a policy's
tolerance is *fate*; anything less is the policy's job).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..failures.distributions import FailureDistribution
from ..failures.injector import FailureEvent, FailureSchedule
from .topology import GEO_LEVELS, GeoSpec

__all__ = ["GeoEvent", "draw_geo_schedule", "site_kill_members"]


@dataclass(frozen=True)
class GeoEvent:
    """A correlated failure: every node of one domain at one instant."""

    time: float
    level: str  # one of GEO_LEVELS
    domain: int  # domain id at that level
    nodes: tuple[int, ...]  # members killed together


def site_kill_members(geo: GeoSpec, node_id: int) -> list[int]:
    """The co-site companions a site-kill anchored at ``node_id`` takes
    out (the whole site, anchor included)."""
    return geo.nodes_in_site(geo.site_of(node_id))


def draw_geo_schedule(
    rng: np.random.Generator,
    geo: GeoSpec,
    horizon: float,
    node_dist: FailureDistribution | None = None,
    rack_dist: FailureDistribution | None = None,
    site_dist: FailureDistribution | None = None,
    repair_time: float = 0.0,
) -> tuple[FailureSchedule, list[GeoEvent]]:
    """Superimposed node/rack/site renewal failure processes.

    Each provided distribution drives an independent renewal process
    *per domain at its level* (``node_dist``'s MTBF is per node,
    ``rack_dist``'s per rack, ``site_dist``'s per site); a level with no
    distribution contributes nothing.  Draw order is fixed — levels in
    :data:`~repro.geo.topology.GEO_LEVELS` order, domains ascending
    within a level — so one seeded ``rng`` replays the exact schedule.

    Returns the flat per-node :class:`FailureSchedule` (drop-in for the
    existing injector/resilience surfaces) plus the correlated
    :class:`GeoEvent` annotations, both sorted by time.
    """
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    dists = {"node": node_dist, "rack": rack_dist, "site": site_dist}
    geo_events: list[GeoEvent] = []
    for level in GEO_LEVELS:
        dist = dists.get(level)
        if dist is None:
            continue
        dmap = geo.domain_map(level)
        for domain in dmap.domains():
            members = tuple(dmap.nodes_in(domain))
            t = 0.0
            while True:
                t += dist.sample(rng)
                if t > horizon:
                    break
                geo_events.append(
                    GeoEvent(time=t, level=level, domain=domain, nodes=members)
                )
                t += repair_time
    geo_events.sort(key=lambda e: (e.time, GEO_LEVELS.index(e.level), e.domain))
    events: list[FailureEvent] = []
    ordinals = [0] * geo.n_nodes
    for ge in geo_events:
        for node in ge.nodes:
            events.append(
                FailureEvent(time=ge.time, node_id=node, ordinal=ordinals[node])
            )
            ordinals[node] += 1
    events.sort(key=lambda e: (e.time, e.node_id))
    return FailureSchedule(events), geo_events
