"""Remus-style asynchronous cross-site replication.

Remus (PAPERS.md) keeps a warm full copy of each VM at a remote host by
streaming checkpoint epochs asynchronously: the primary never waits for
the remote ack, so protection is cheap but the copy *lags* — state
committed inside the lag window is lost if the whole primary site dies
before the stream lands.

:class:`RemusAsyncReplicator` is that pattern as a policy layer over
DVDC: local parity still handles ordinary node loss at LAN speed, while
every committed epoch is additionally shipped over the WAN to a standby
node in the next site.  When a correlated failure exceeds the local
scheme's tolerance (a full-site outage — fate for ``local-parity`` and
plain ``geo-spread`` beyond ``m``), :meth:`salvage_cluster` restores the
dead VMs from their remote copies at whatever epoch the stream had
reached, rolling the survivors back to match and reporting how many
epochs the lag cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.checksum import block_checksum
from ..cluster.images import CheckpointImage, CheckpointKind
from ..cluster.vm import VMState
from ..core.dvdc import DisklessCheckpointer
from ..core.recovery import DisklessRecoveryReport
from ..network.link import NetworkError
from ..sim import AllOf, NULL_TRACER, Tracer
from ..telemetry import probe_of
from .topology import GeoSpec

__all__ = ["RemoteCopy", "RemusSalvageReport", "RemusAsyncReplicator"]


@dataclass
class RemoteCopy:
    """One VM's warm standby image at a remote site."""

    vm_id: int
    node_id: int  # standby home
    epoch: int  # checkpoint epoch the copy holds
    payload: np.ndarray | None  # full flat snapshot (None = timing-only)
    checksum: int | None
    replicated_at: float


@dataclass
class RemusSalvageReport:
    """Outcome of a remote-copy salvage after a beyond-tolerance loss."""

    #: VMs restored from their remote copy (vm_id -> standby node)
    salvaged: dict[int, int] = field(default_factory=dict)
    #: VMs that had no usable copy (never replicated, or standby dead)
    unsalvageable: list[int] = field(default_factory=list)
    #: survivors rolled back to the committed epoch
    rolled_back: list[int] = field(default_factory=list)
    #: committed_epoch − oldest restored copy epoch (0 = no loss window)
    rollback_epochs: int = 0
    salvage_time: float = 0.0


class RemusAsyncReplicator:
    """Asynchronous remote full-copy protection over a geo cluster.

    Each VM gets a fixed standby node in the *next* site
    (``(site + 1) % n_sites``, round-robin within that site), so no
    site's copies live in the site they protect.  Replication rides the
    modeled WAN links — the lag window is whatever the low-bandwidth
    uplinks make it, and is recorded per epoch in :attr:`lag_by_epoch`.
    """

    def __init__(
        self,
        cluster,
        geo: GeoSpec,
        ck: DisklessCheckpointer,
        tracer: Tracer = NULL_TRACER,
    ):
        if geo.n_sites < 2:
            raise ValueError("remus-async needs >= 2 sites")
        self.cluster = cluster
        self.geo = geo
        self.ck = ck
        self.tracer = tracer
        self._probe = probe_of(tracer)
        self.copies: dict[int, RemoteCopy] = {}
        self._standby: dict[int, int] = {}
        self._rr: dict[int, int] = {}  # per-site round-robin cursor
        #: bytes shipped over the WAN by replication (requested)
        self.wan_bytes = 0.0
        #: epoch -> seconds from commit to last remote ack
        self.lag_by_epoch: dict[int, float] = {}
        self.replicated_epochs = 0

    # ------------------------------------------------------------------
    # standby placement
    # ------------------------------------------------------------------
    def standby_node(self, vm_id: int) -> int:
        """The VM's fixed standby home (assigned on first use)."""
        if vm_id not in self._standby:
            vm = self.cluster.vm(vm_id)
            if vm.node_id is None:
                raise RuntimeError(
                    f"vm {vm_id}: cannot assign a standby while homeless"
                )
            site = self.geo.site_of(vm.node_id)
            standby_site = (site + 1) % self.geo.n_sites
            pool = self.geo.nodes_in_site(standby_site)
            cursor = self._rr.get(standby_site, 0)
            self._standby[vm_id] = pool[cursor % len(pool)]
            self._rr[standby_site] = cursor + 1
        return self._standby[vm_id]

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    def replicate_epoch(self, committed_at: float | None = None):
        """Process: ship every VM's committed image to its standby.

        Asynchronous by construction — call it *after* a cycle commits;
        the protocol never waits on it.  A VM whose transfer fails
        (WAN outage, node crash) simply keeps its previous copy; the lag
        window grows accordingly.  Returns the number of fresh copies.
        """
        sim = self.cluster.sim
        epoch = self.ck.committed_epoch
        if epoch < 0:
            return 0
        started = sim.now if committed_at is None else committed_at
        procs = [
            sim.process(self._replicate_vm(vm_id))
            for vm_id in sorted(self.ck.layout.vm_ids)
        ]
        if procs:
            yield AllOf(sim, procs)
        fresh = sum(1 for c in self.copies.values() if c.epoch == epoch)
        self.lag_by_epoch[epoch] = sim.now - started
        self.replicated_epochs += 1
        self._probe.observe(
            "repro_geo_remus_lag_seconds", sim.now - started,
            help="Commit-to-remote-ack lag per replicated epoch",
        )
        self.tracer.emit(
            sim.now, "geo.remus.replicated", epoch=epoch, fresh=fresh,
            lag=sim.now - started,
        )
        return fresh

    def _replicate_vm(self, vm_id: int):
        cluster = self.cluster
        vm = cluster.vm(vm_id)
        if vm.node_id is None or vm.state == VMState.FAILED:
            return
        image = cluster.hypervisor(vm.node_id).committed(vm_id)
        if image is None:
            return
        dst = self.standby_node(vm_id)
        size = vm.memory_bytes
        if dst != vm.node_id:
            flow = cluster.topology.transfer(
                vm.node_id, dst, size, label=f"remus.vm{vm_id}"
            )
            try:
                yield flow
            except NetworkError:
                return  # keep the older copy; lag window widens
        payload = None
        checksum = None
        if image.payload is not None:
            payload = image.payload_flat().copy()
            checksum = block_checksum(payload)
        self.wan_bytes += size
        self.copies[vm_id] = RemoteCopy(
            vm_id=vm_id, node_id=dst, epoch=image.epoch, payload=payload,
            checksum=checksum, replicated_at=cluster.sim.now,
        )

    # ------------------------------------------------------------------
    # salvage
    # ------------------------------------------------------------------
    def covered_epoch(self, vm_id: int) -> int:
        """Epoch the VM's live remote copy holds (−1 = none usable)."""
        copy = self.copies.get(vm_id)
        if copy is None or not self.cluster.node(copy.node_id).alive:
            return -1
        return copy.epoch

    def salvage_cluster(self) -> "RemusSalvageReport":
        """Process: recover a beyond-tolerance loss from remote copies.

        Every failed, homeless VM is re-hosted on its standby node and
        restored from the copy there (a local restore — the bytes
        already crossed the WAN); survivors roll back to the committed
        epoch.  The caller is expected to repair dead nodes, ``heal()``,
        and run a fresh cycle to re-converge epochs before any strict
        audit — salvaged VMs legitimately sit at older epochs until
        then.
        """
        sim = self.cluster.sim
        start = sim.now
        out = RemusSalvageReport()
        lost = [
            vm.vm_id
            for vm in self.cluster.all_vms
            if vm.state == VMState.FAILED and vm.node_id is None
        ]
        lost_set = set(lost)
        roll = DisklessRecoveryReport(failed_node=-1)
        procs = []
        for vm_id in self.ck.layout.vm_ids:
            if vm_id not in lost_set:
                procs.append(
                    sim.process(self.ck._rollback_survivor(vm_id, roll))
                )
        for vm_id in lost:
            procs.append(sim.process(self._salvage_vm(vm_id, out)))
        if procs:
            yield AllOf(sim, procs)
        out.rolled_back = roll.rolled_back
        restored = [
            self.copies[v].epoch for v in out.salvaged
        ]
        if restored:
            out.rollback_epochs = self.ck.committed_epoch - min(restored)
        out.salvage_time = sim.now - start
        self._probe.count(
            "repro_geo_remus_salvages_total", help="Remote-copy salvages run",
        )
        self.tracer.emit(
            sim.now, "geo.remus.salvage", salvaged=sorted(out.salvaged),
            unsalvageable=out.unsalvageable, rollback_epochs=out.rollback_epochs,
        )
        return out

    def _salvage_vm(self, vm_id: int, out: RemusSalvageReport):
        cluster = self.cluster
        copy = self.copies.get(vm_id)
        if copy is None or not cluster.node(copy.node_id).alive:
            out.unsalvageable.append(vm_id)
            return
        if copy.payload is not None and copy.checksum is not None:
            if block_checksum(copy.payload) != copy.checksum:
                out.unsalvageable.append(vm_id)
                return
        vm = cluster.vm(vm_id)
        cluster.place_failed_vm(vm_id, copy.node_id)
        hv = cluster.hypervisor(copy.node_id)
        # local restore from the warm copy: a memcpy, like a rollback
        yield cluster.sim.timeout(vm.memory_bytes / self.ck.xor_bandwidth)
        image = CheckpointImage(
            vm_id=vm_id,
            epoch=copy.epoch,
            kind=CheckpointKind.FULL,
            logical_bytes=vm.memory_bytes,
            captured_at=cluster.sim.now,
            payload=None if copy.payload is None else copy.payload.copy(),
            meta={"salvaged": True},
        )
        if copy.payload is not None or vm.image is None:
            hv.restore(vm, image)
        else:
            vm.revive()
        hv.commit_checkpoint(image)
        out.salvaged[vm_id] = copy.node_id
        self.tracer.emit(
            cluster.sim.now, "geo.remus.salvaged_vm", vm=vm_id,
            node=copy.node_id, epoch=copy.epoch,
        )
