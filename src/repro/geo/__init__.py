"""Multi-site georedundancy: hierarchical topologies, correlated
site/rack failures, and cross-site checkpoint placement policies.

The paper's scheme protects against independent *node* loss inside one
cluster; this package extends the reproduction to the failure mode that
actually dominates real deployments — correlated domain outages (a rack
PDU, a site-wide power or network event) — and to the placement
policies that survive them:

- :mod:`~repro.geo.topology` — node → rack → pod → site hierarchy over
  :class:`~repro.network.SwitchedTopology`, with modeled WAN links
  (high latency, low bandwidth, independently partitionable).
- :mod:`~repro.geo.failures` — seeded correlated failure schedules:
  rack- and site-level renewal processes that kill whole domains.
- :mod:`~repro.geo.remus` — asynchronous remote full-copy protection
  (the Remus pattern) with an explicit, measured lag window.
- :mod:`~repro.geo.study` — the three-policy survival study
  (``local-parity`` / ``geo-spread`` / ``remus-async``) behind
  ``repro geo`` and ``repro bench geo``.

A single-site :class:`~repro.geo.topology.GeoTopology` is bit-identical
to the plain switched fabric — the geo layer is free when unused.
"""

from .failures import GeoEvent, draw_geo_schedule, site_kill_members
from .remus import RemoteCopy, RemusAsyncReplicator, RemusSalvageReport
from .study import (
    POLICIES,
    GeoConfig,
    build_geo_scenario,
    generate_geo_bench,
    respread_groups,
    run_geo_point,
    run_geo_study,
)
from .topology import (
    DEFAULT_WAN_BANDWIDTH,
    DEFAULT_WAN_LATENCY,
    GEO_LEVELS,
    GeoSpec,
    GeoTopology,
    geo_cluster_spec,
)

__all__ = [
    "GEO_LEVELS",
    "DEFAULT_WAN_BANDWIDTH",
    "DEFAULT_WAN_LATENCY",
    "GeoSpec",
    "GeoTopology",
    "geo_cluster_spec",
    "GeoEvent",
    "draw_geo_schedule",
    "site_kill_members",
    "RemoteCopy",
    "RemusAsyncReplicator",
    "RemusSalvageReport",
    "POLICIES",
    "GeoConfig",
    "build_geo_scenario",
    "respread_groups",
    "run_geo_point",
    "run_geo_study",
    "generate_geo_bench",
]
