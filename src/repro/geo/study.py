"""The geo placement study: three policies against a site outage.

One seeded scenario — a multi-site cluster running incremental DVDC
epochs — run under each cross-site placement policy:

``local-parity``
    The status quo: orthogonal groups over *nodes*, sites ignored.
    Cheapest (all parity traffic stays LAN-local by accident of
    placement) and the paper's baseline — but a site outage takes
    members *and* their parity homes together, so it loses data.
``geo-spread``
    Groups constrained to pairwise-distinct *sites*
    (``build_orthogonal_layout(domains=...)`` + domain-aware recovery
    placement): a full-site loss costs each group at most one element,
    within the coding scheme's tolerance.  Every checkpoint exchange
    crosses the WAN.
``remus-async``
    Local parity at LAN speed plus an asynchronous remote full copy per
    VM (:class:`~repro.geo.remus.RemusAsyncReplicator`).  A site outage
    beyond local tolerance is salvaged from the remote copies at the
    cost of the replication lag window (epochs not yet shipped).

:func:`run_geo_point` runs one (policy, seed) cell end to end — epochs,
optional site kill, recovery/salvage, repair, re-spread, strict audit —
and returns survival plus bit-exactness digests.  The ``geo_cell``
campaign task kind wraps it; ``repro geo study`` and ``repro bench geo``
fan it out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from ..checkpoint.strategies import IncrementalCapture
from ..cluster.checksum import block_checksum
from ..cluster.vm import VMState
from ..coding import get_scheme
from ..controlplane.scheduler import PlacementEngine
from ..core.architectures import dvdc
from ..network.link import NetworkError
from ..perf.scale import scenario_digests
from ..sim import NULL_TRACER, Simulator, Tracer
from ..sim.rng import RngRegistry
from .remus import RemusAsyncReplicator
from .topology import (
    DEFAULT_WAN_BANDWIDTH,
    DEFAULT_WAN_LATENCY,
    GeoSpec,
    geo_cluster_spec,
)

__all__ = [
    "POLICIES",
    "GeoConfig",
    "build_geo_scenario",
    "respread_groups",
    "run_geo_point",
    "run_geo_study",
    "generate_geo_bench",
]

POLICIES = ("local-parity", "geo-spread", "remus-async")


@dataclass(frozen=True)
class GeoConfig:
    """Parameters of one geo-study cell."""

    n_nodes: int = 12
    n_sites: int = 3
    racks_per_site: int = 2
    policy: str = "local-parity"
    vms_per_node: int = 1
    epochs: int = 2
    seed: int = 0
    scheme: str = "xor"
    group_size: int | None = None
    image_pages: int = 8
    page_size: int = 64
    dirty_pages_per_vm: int = 2
    wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH
    wan_latency: float = DEFAULT_WAN_LATENCY
    allocator: str = "incremental"
    #: site to kill after the last commit; ``None`` = fault-free run,
    #: ``-1`` = the site whose loss hurts the layout most (computed)
    kill_site: int | None = None
    #: final epochs remus-async has NOT yet shipped when the site dies
    #: (its lag window, in epochs); 0 = fully caught up
    lag_epochs: int = 1
    trace: bool = False

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.lag_epochs < 0 or self.lag_epochs > self.epochs:
            raise ValueError("lag_epochs must be in 0..epochs")

    @property
    def n_vms(self) -> int:
        return self.n_nodes * self.vms_per_node

    def geo_spec(self) -> GeoSpec:
        return GeoSpec(
            n_nodes=self.n_nodes,
            n_sites=self.n_sites,
            racks_per_site=self.racks_per_site,
            wan_bandwidth=self.wan_bandwidth,
            wan_latency=self.wan_latency,
        )


def build_geo_scenario(cfg: GeoConfig, tracer: Tracer | None = None):
    """Construct ``(sim, cluster, ck, replicator, geo, rngs, tracer)``.

    Mirrors :func:`repro.perf.scale.build_scale_scenario` — same
    placement engine, same named RNG streams, same VM shape — with the
    topology swapped for :class:`~repro.geo.topology.GeoTopology` and
    the layout built per ``cfg.policy``.
    """
    sim = Simulator()
    if tracer is None:
        tracer = Tracer() if cfg.trace else NULL_TRACER
    geo = cfg.geo_spec()
    from ..cluster.cluster import VirtualCluster

    spec = geo_cluster_spec(geo, allocator=cfg.allocator)
    rngs = RngRegistry(cfg.seed)
    cluster = VirtualCluster(sim, spec, tracer=tracer)
    hosts = PlacementEngine(cluster).spread(cfg.n_vms)
    init = rngs.stream("image-init")
    for i in range(cfg.n_vms):
        vm = cluster.create_vm(
            hosts[i], 1e9, dirty_rate=2e5,
            image_pages=cfg.image_pages, page_size=cfg.page_size,
        )
        fill = min(512, vm.image.nbytes)
        vm.image.write(0, init.integers(0, 256, fill, dtype=np.uint8))
        vm.image.clear_dirty()
    scheme = get_scheme(cfg.scheme)
    # one group size for every policy, so storage/traffic are comparable:
    # the geo-spread-feasible k = n_sites - m
    group_size = (
        cfg.group_size
        if cfg.group_size is not None
        else max(1, cfg.n_sites - scheme.n_shards)
    )
    domains = geo.domain_map("site") if cfg.policy == "geo-spread" else None
    ck = dvdc(
        cluster, group_size=group_size, strategy=IncrementalCapture(),
        tracer=tracer, scheme=scheme, domains=domains,
    )
    replicator = None
    if cfg.policy == "remus-async":
        replicator = RemusAsyncReplicator(cluster, geo, ck, tracer=tracer)
        for vm_id in sorted(cluster.vms):
            replicator.standby_node(vm_id)  # fixed assignment up front
    return sim, cluster, ck, replicator, geo, rngs, tracer


def _dirty_epoch(cluster, rngs: RngRegistry, cfg: GeoConfig) -> None:
    for vm in cluster.all_vms:
        rng = rngs.stream(f"dirty/vm{vm.vm_id}")
        idx = rng.integers(0, cfg.image_pages, size=cfg.dirty_pages_per_vm)
        vm.image.touch_pages(idx, rng)


def _committed_checksums(cluster) -> dict[int, int]:
    out: dict[int, int] = {}
    for node in cluster.nodes:
        for vm_id, img in node.checkpoint_store.items():
            if isinstance(img.payload, np.ndarray):
                out[vm_id] = block_checksum(img.payload_flat())
    return dict(sorted(out.items()))


def _group_site_losses(ck, cluster, geo: GeoSpec, site: int) -> dict[int, int]:
    """Elements (members + parity shards) each group loses to ``site``."""
    dead = set(geo.nodes_in_site(site))
    losses: dict[int, int] = {}
    for g in ck.layout.groups:
        n = sum(
            1 for v in g.member_vm_ids if cluster.vm(v).node_id in dead
        )
        n += sum(1 for p in g.parity_nodes if p in dead)
        if n:
            losses[g.group_id] = n
    return losses


def _worst_kill_site(ck, cluster, geo: GeoSpec) -> int:
    """The site whose loss costs the worst-placed group the most
    elements (ties to the lowest site id) — where ``kill_site=-1`` aims."""
    best = (0, 0)
    for site in range(geo.n_sites):
        losses = _group_site_losses(ck, cluster, geo, site)
        worst = max(losses.values(), default=0)
        if worst > best[1]:
            best = (site, worst)
    return best[0]


def respread_groups(ck, cluster, domains, tracer: Tracer = NULL_TRACER):
    """Process: restore domain orthogonality of *members* after repairs.

    Recovery during a domain outage legitimately lands rebuilt members
    in surviving domains (the preferred tier is empty while the domain
    is down).  Once nodes are repaired, this pass cold-migrates each
    offending member — committed image and all — onto an alive node in
    a domain holding no other element of its group, so a strict
    domain-aware audit passes again.  Parity re-homes stay ``heal()``'s
    job.  Returns ``{vm_id: new_node}``.
    """
    moved: dict[int, int] = {}
    for group in list(ck.layout.groups):
        placed: dict[int, list[int]] = {}  # domain -> member vm_ids there
        parity_doms = {
            domains.domain_of(p)
            for p in group.parity_nodes
            if cluster.node(p).alive
        }
        for v in group.member_vm_ids:
            node = cluster.vm(v).node_id
            if node is None:
                continue
            placed.setdefault(domains.domain_of(node), []).append(v)
        offenders = [
            v
            for dom, vms in sorted(placed.items())
            for v in sorted(vms)[1:]  # keep the first element per domain
        ] + [
            v
            for dom, vms in sorted(placed.items())
            if dom in parity_doms
            for v in sorted(vms)[:1]
        ]
        for vm_id in offenders:
            vm = cluster.vm(vm_id)
            src = vm.node_id
            if src is None:
                continue
            taken = {
                domains.domain_of(cluster.vm(v).node_id)
                for v in group.member_vm_ids
                if v != vm_id and cluster.vm(v).node_id is not None
            } | parity_doms
            member_nodes = {
                cluster.vm(v).node_id
                for v in group.member_vm_ids
                if cluster.vm(v).node_id is not None
            }
            candidates = [
                n for n in cluster.alive_nodes
                if domains.domain_of(n.node_id) not in taken
                and n.node_id not in member_nodes
                and n.node_id not in group.parity_nodes
            ]
            if not candidates:
                continue
            dst = min(candidates, key=lambda n: (len(n.vms), n.node_id)).node_id
            was_running = vm.state == VMState.RUNNING
            if was_running:
                vm.pause()
            try:
                yield ck._transfer(
                    src, dst, vm.memory_bytes, label=f"respread.vm{vm_id}"
                )
            except NetworkError:
                if was_running:
                    vm.resume()
                continue
            cluster.move_vm(vm_id, dst)
            img = cluster.node(src).checkpoint_store.pop(vm_id, None)
            if img is not None:
                cluster.node(dst).checkpoint_store[vm_id] = img
            if was_running:
                vm.resume()
            moved[vm_id] = dst
            tracer.emit(
                cluster.sim.now, "geo.respread", vm=vm_id, src=src, dst=dst,
                group=group.group_id,
            )
    return moved


def run_geo_point(cfg: GeoConfig, collect_digests: bool = False) -> dict:
    """Run one geo-study cell end to end.

    Fault-free epochs, then (when ``kill_site`` is set) a correlated
    full-site outage with WAN partition, recovery or remote salvage,
    repair, domain re-spread, a fresh converging cycle, and a strict
    audit.  Survival is judged bit-exactly: every VM's committed image
    must match the checksum logged when its restored epoch committed.
    """
    sim, cluster, ck, replicator, geo, rngs, tracer = build_geo_scenario(cfg)

    def run_proc(gen):
        proc = sim.process(gen)
        sim.run()
        if proc.ok is False:
            raise proc.value
        return proc.value

    epoch_log: dict[int, dict[int, int]] = {}
    replicate_until = cfg.epochs - cfg.lag_epochs
    for e in range(cfg.epochs):
        _dirty_epoch(cluster, rngs, cfg)
        run_proc(ck.run_cycle())
        epoch_log[ck.committed_epoch] = _committed_checksums(cluster)
        if replicator is not None and (e + 1) <= replicate_until:
            run_proc(replicator.replicate_epoch())

    result: dict = {
        "policy": cfg.policy,
        "seed": cfg.seed,
        "n_nodes": cfg.n_nodes,
        "n_sites": cfg.n_sites,
        "scheme": cfg.scheme,
        "epochs": cfg.epochs,
        "committed_epoch": ck.committed_epoch,
        "kill_site": None,
        "beyond_tolerance": False,
        "survived": True,
        "data_lost": False,
        "rollback_epochs": 0,
        "salvaged_vms": 0,
        "respread_vms": 0,
    }

    domains = geo.domain_map("site")
    if cfg.kill_site is not None:
        site = (
            _worst_kill_site(ck, cluster, geo)
            if cfg.kill_site == -1
            else cfg.kill_site
        )
        result["kill_site"] = site
        losses = _group_site_losses(ck, cluster, geo, site)
        beyond = any(n > ck.scheme.tolerance for n in losses.values())
        result["beyond_tolerance"] = beyond
        dead_nodes = geo.nodes_in_site(site)
        if geo.n_sites > 1:
            cluster.topology.set_site_wan_up(site, False, reason="site outage")
        for node_id in dead_nodes:
            cluster.kill_node(node_id)

        restored_epochs: dict[int, int] = {}
        if not beyond:
            run_proc(ck.recover(dead_nodes[0]))
            restored_epochs = {
                vm.vm_id: ck.committed_epoch for vm in cluster.all_vms
            }
        elif replicator is not None:
            salvage = run_proc(replicator.salvage_cluster())
            result["rollback_epochs"] = salvage.rollback_epochs
            result["salvaged_vms"] = len(salvage.salvaged)
            result["data_lost"] = bool(salvage.unsalvageable)
            restored_epochs = {
                vm.vm_id: ck.committed_epoch for vm in cluster.all_vms
            }
            for vm_id in salvage.salvaged:
                restored_epochs[vm_id] = replicator.copies[vm_id].epoch
        else:
            result["data_lost"] = True
            result["survived"] = False

        if restored_epochs:
            # bit-exact survival check against the epoch log
            ok = True
            committed_now = _committed_checksums(cluster)
            for vm in cluster.all_vms:
                if vm.state == VMState.FAILED or vm.node_id is None:
                    ok = False
                    break
                want = epoch_log.get(restored_epochs[vm.vm_id], {}).get(vm.vm_id)
                if want is not None and committed_now.get(vm.vm_id) != want:
                    ok = False
                    break
            result["survived"] = ok
            result["data_lost"] = result["data_lost"] or not ok

        # repair and converge back to full health
        for node_id in dead_nodes:
            cluster.repair_node(node_id)
        if geo.n_sites > 1:
            cluster.topology.set_site_wan_up(site, True, reason="site repaired")
        if result["survived"]:
            if cfg.policy == "geo-spread":
                moved = run_proc(respread_groups(ck, cluster, domains, tracer))
                result["respread_vms"] = len(moved)
            run_proc(ck.heal())
            _dirty_epoch(cluster, rngs, cfg)
            run_proc(ck.run_cycle())
            epoch_log[ck.committed_epoch] = _committed_checksums(cluster)
            if replicator is not None:
                run_proc(replicator.replicate_epoch())
            from ..audit import audit_cluster

            audit = audit_cluster(
                cluster, ck.layout, ck.committed_epoch, strict=True,
                context="geo.post_disaster",
                scheme=ck.scheme,
                domains=domains if cfg.policy == "geo-spread" else None,
            )
            result["strict_audit_ok"] = not audit.fatal
            result["audit_violations"] = [str(v) for v in audit.fatal]

    topo = cluster.topology
    result["wan_bytes"] = float(getattr(topo, "wan_bytes", 0.0))
    if replicator is not None:
        result["replication_lag"] = {
            str(k): float(v) for k, v in sorted(replicator.lag_by_epoch.items())
        }
    result["events"] = sim.event_count
    result["sim_time"] = sim.now
    if collect_digests:
        digests = scenario_digests(sim, cluster, ck, rngs, tracer)
        h = hashlib.sha256()
        h.update(float(result["wan_bytes"]).hex().encode())
        h.update(
            f"|{result['survived']}|{result['data_lost']}"
            f"|{result['rollback_epochs']}|{result['salvaged_vms']}".encode()
        )
        for epoch, sums in sorted(epoch_log.items()):
            h.update(f"|e{epoch}:{sorted(sums.items())}".encode())
        digests["geo"] = h.hexdigest()
        result["digests"] = digests
    return result


def run_geo_study(
    cfg: GeoConfig,
    policies=POLICIES,
    seeds=(0,),
    jobs: int = 1,
    store=None,
) -> dict:
    """Fan the (policy × seed) matrix out through the campaign layer.

    Serial and parallel runs are bit-identical (each cell is one
    deterministic ``geo_cell`` task); the summary reports per-policy
    survival under the configured site kill.
    """
    from ..campaign import CampaignRunner, Task

    tasks = []
    for policy in policies:
        for seed in seeds:
            cell = replace(cfg, policy=policy, seed=seed)
            params = {f: getattr(cell, f) for f in cell.__dataclass_fields__}
            tasks.append(Task(kind="geo_cell", params=params))
    outcome = CampaignRunner(store=store, jobs=jobs).run(tasks)
    if outcome.n_failed:
        raise RuntimeError(
            f"{outcome.n_failed} geo cells failed: "
            + "; ".join(str(r.error) for r in outcome.failures()[:3])
        )
    cells = [run.value for run in outcome.runs]
    by_policy: dict[str, list[dict]] = {}
    for cell in cells:
        by_policy.setdefault(cell["policy"], []).append(cell)
    summary = {}
    for policy, rows in sorted(by_policy.items()):
        summary[policy] = {
            "cells": len(rows),
            "survived": sum(1 for r in rows if r["survived"]),
            "data_lost": sum(1 for r in rows if r["data_lost"]),
            "beyond_tolerance": sum(1 for r in rows if r["beyond_tolerance"]),
            "mean_rollback_epochs": (
                sum(r["rollback_epochs"] for r in rows) / len(rows)
            ),
            "mean_wan_bytes": sum(r["wan_bytes"] for r in rows) / len(rows),
        }
    return {"config": cfg.__dict__ | {}, "cells": cells, "summary": summary}


def generate_geo_bench(quick: bool = False, log=lambda msg: None) -> dict:
    """The ``repro bench geo`` payload: policy survival matrix under a
    full-site kill, with the domain-correlated window-loss model
    Monte-Carlo corroborated alongside.
    """
    from ..model import (
        estimate_geo_window_loss,
        geo_window_loss_probability,
        worst_domain_cost,
    )

    seeds = (0,) if quick else (0, 1)
    cfg = GeoConfig(n_nodes=12, n_sites=3, epochs=2, kill_site=-1)
    log(f"geo survival matrix: {len(POLICIES)} policies x {len(seeds)} seeds")
    study = run_geo_study(cfg, seeds=seeds)

    log("window-loss model vs Monte-Carlo (correlated site terms)")
    lam, window, n_nodes, n_sites = 1e-4, 600.0, cfg.n_nodes, cfg.n_sites
    site_rate = 1e-5
    model_points = []
    for policy in POLICIES:
        sim, cluster, ck, _rep, geo, _rngs, _tr = build_geo_scenario(
            replace(cfg, policy=policy)
        )
        cost = worst_domain_cost(ck.layout, cluster, geo.domain_map("site"))
        closed = geo_window_loss_probability(
            lam, n_nodes, window, tolerance=ck.scheme.tolerance,
            site_rate=site_rate, n_sites=n_sites, site_cost=cost,
        )
        mc = estimate_geo_window_loss(
            np.random.default_rng([7, 0x6E0]), lam, n_nodes, window,
            n_runs=20000 if not quick else 4000,
            tolerance=ck.scheme.tolerance,
            site_rate=site_rate, n_sites=n_sites, site_cost=cost,
        )
        agrees = abs(mc.mean - closed) <= max(4 * mc.std_error, 1e-4)
        # the policy-differentiating prediction: a lone site outage
        # exceeds local tolerance iff the layout stacks more elements
        # per site than the scheme absorbs — checked against the
        # simulated survival matrix below
        predicted_beyond = cost > ck.scheme.tolerance
        sim_beyond = [
            bool(c["beyond_tolerance"])
            for c in study["cells"]
            if c["policy"] == policy
        ]
        model_points.append({
            "policy": policy,
            "site_cost": cost,
            "closed_form": closed,
            "mc_mean": mc.mean,
            "mc_std_error": mc.std_error,
            "agrees": agrees,
            "predicted_beyond_tolerance": predicted_beyond,
            "matches_sim": all(s == predicted_beyond for s in sim_beyond),
        })
    return {
        "bench": "geo",
        "quick": quick,
        "summary": study["summary"],
        "cells": study["cells"],
        "model": {
            "lam": lam, "window": window, "site_rate": site_rate,
            "points": model_points,
        },
    }
