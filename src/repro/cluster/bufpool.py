"""Size-keyed free lists for checkpoint/parity ndarray buffers.

A DVDC epoch at scale wants thousands of same-sized uint8 buffers —
full-image snapshots, merged commits, parity accumulators, XOR scratch —
and allocating each one fresh makes the allocator the hot path.  The
pool recycles them instead.

Lifetime rules (documented in ``docs/performance.md``):

* :meth:`acquire` returns a buffer with **unspecified contents** — the
  caller must fully overwrite it (every producer here does: ``copyto``,
  gather, or zero-fill).
* :meth:`recycle` takes ownership back.  The caller must hold the *only*
  remaining reference; when unsure, pass through the refcount gate
  (``recycle`` checks ``sys.getrefcount`` itself and silently refuses
  buffers that are still referenced elsewhere, or are views/slices).
  A refused buffer is simply garbage-collected as before — recycling is
  an optimization, never a correctness requirement.
* The pool never hands the same buffer out twice without an intervening
  recycle, and never mutates buffers it holds.

The pool is deliberately content-agnostic: bit-exactness of checkpoints
and parity is proven by the golden/differential tests with pooling on.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = ["BufferPool", "GLOBAL_POOL"]

#: ``sys.getrefcount(buf)`` inside ``recycle(buf)`` sees: the caller's
#: reference, the argument binding, and getrefcount's own argument — a
#: buffer referenced *nowhere else* therefore measures exactly 3.
_SOLE_OWNER_REFCOUNT = 3


class BufferPool:
    """Free lists of flat uint8 ndarrays, keyed by byte length.

    Parameters
    ----------
    max_buffers_per_size:
        Cap on retained buffers per distinct size (excess recycles are
        dropped to the garbage collector).
    max_total_bytes:
        Cap on total retained bytes across all sizes.
    """

    def __init__(self, max_buffers_per_size: int = 64,
                 max_total_bytes: int = 1 << 31):
        self.max_buffers_per_size = int(max_buffers_per_size)
        self.max_total_bytes = int(max_total_bytes)
        self.enabled = True
        self._free: dict[int, list[np.ndarray]] = {}
        self._held_bytes = 0
        # stats (monotonic; read by tests and `repro bench scale`)
        self.hits = 0
        self.misses = 0
        self.recycled = 0
        self.rejected = 0

    def acquire(self, nbytes: int) -> np.ndarray:
        """A flat uint8 array of exactly ``nbytes``; contents unspecified."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if self.enabled:
            free = self._free.get(nbytes)
            if free:
                self.hits += 1
                self._held_bytes -= nbytes
                return free.pop()
        self.misses += 1
        return np.empty(nbytes, dtype=np.uint8)

    def recycle(self, buf: np.ndarray | None,
                extra_refs: int = 0) -> bool:
        """Return ``buf`` to the pool if it is safe to reuse.

        Safe means: flat contiguous uint8 array that owns its memory, and
        the caller holds the sole remaining reference (refcount gate;
        ``extra_refs`` raises the allowance when the caller's frame
        necessarily holds extra bindings).  Returns True iff retained.
        """
        if buf is None or not self.enabled:
            return False
        if (
            not isinstance(buf, np.ndarray)
            or buf.dtype != np.uint8
            or buf.ndim != 1
            or buf.base is not None
            or not buf.flags["C_CONTIGUOUS"]
            or sys.getrefcount(buf) > _SOLE_OWNER_REFCOUNT + extra_refs
        ):
            self.rejected += 1
            return False
        nbytes = buf.shape[0]
        free = self._free.setdefault(nbytes, [])
        if (
            len(free) >= self.max_buffers_per_size
            or self._held_bytes + nbytes > self.max_total_bytes
        ):
            self.rejected += 1
            return False
        free.append(buf)
        self._held_bytes += nbytes
        self.recycled += 1
        return True

    def clear(self) -> None:
        """Drop every held buffer (stats are preserved)."""
        self._free.clear()
        self._held_bytes = 0

    @property
    def held_bytes(self) -> int:
        return self._held_bytes

    @property
    def held_buffers(self) -> int:
        return sum(len(v) for v in self._free.values())

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "rejected": self.rejected,
            "held_buffers": self.held_buffers,
            "held_bytes": self._held_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BufferPool {self.held_buffers} bufs/{self._held_bytes}B held, "
            f"{self.hits} hits/{self.misses} misses>"
        )


#: Process-wide pool used by the checkpoint/parity hot paths.  Campaign
#: workers each get their own copy (module state is per-process).
GLOBAL_POOL = BufferPool()
