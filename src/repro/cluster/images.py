"""Checkpoint image containers.

A :class:`CheckpointImage` is what the checkpointing layer produces and
the parity/recovery layer consumes: the captured state of one VM at one
checkpoint epoch.  It carries both the *logical* size (what the timing
models charge for network/disk movement) and, optionally, a *functional*
payload (real bytes) so that parity and reconstruction can be verified
bit-exactly in tests and examples.

A :class:`ParityBlock` is the XOR of the images of one RAID group, plus
enough metadata to know what it covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .memory import PageDelta

__all__ = ["CheckpointKind", "CheckpointImage", "ParityBlock"]


class CheckpointKind(str, Enum):
    """How the image was captured (Section II-B's three variants)."""

    FULL = "full"
    INCREMENTAL = "incremental"
    FORKED = "forked"


@dataclass
class CheckpointImage:
    """Captured state of one VM at one epoch.

    Attributes
    ----------
    vm_id:
        Owning VM.
    epoch:
        Checkpoint sequence number (0 = first).
    kind:
        Capture strategy that produced it.
    logical_bytes:
        Size charged by timing models (full image or dirty set, after
        compression if any).
    payload:
        Optional functional content: a full flat uint8 snapshot (FULL /
        FORKED) or a :class:`PageDelta` (INCREMENTAL).
    base_epoch:
        For INCREMENTAL images, the epoch this delta applies on top of.
    """

    vm_id: int
    epoch: int
    kind: CheckpointKind
    logical_bytes: float
    captured_at: float
    payload: np.ndarray | PageDelta | None = None
    base_epoch: int | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.logical_bytes < 0:
            raise ValueError(f"logical_bytes must be >= 0, got {self.logical_bytes}")
        if self.kind == CheckpointKind.INCREMENTAL and self.payload is not None:
            if not isinstance(self.payload, PageDelta):
                raise TypeError("incremental checkpoint payload must be a PageDelta")

    @property
    def functional(self) -> bool:
        return self.payload is not None

    def payload_flat(self) -> np.ndarray:
        """The payload as a flat uint8 array (full snapshots only)."""
        if isinstance(self.payload, np.ndarray):
            return self.payload.reshape(-1).view(np.uint8)
        raise TypeError(f"checkpoint {self.vm_id}@{self.epoch} has no flat payload")


@dataclass
class ParityBlock:
    """XOR parity over the members of one RAID group at one epoch.

    ``member_vm_ids`` lists the VMs whose images were folded in, in the
    canonical group order.  ``data`` is the XOR of their payloads (when
    functional).  ``logical_bytes`` equals the member image size — parity
    is as large as one member, the RAID-5 space overhead of 1/(k+1).
    """

    group_id: int
    epoch: int
    member_vm_ids: tuple[int, ...]
    logical_bytes: float
    stored_on_node: int | None = None
    data: np.ndarray | None = None
    #: CRC of ``data`` taken at encode time; None for timing-only blocks.
    checksum: int | None = None
    #: CRC of each member image folded in, vm_id -> checksum.  Lets a
    #: rebuild verify the reconstructed bytes end-to-end.
    member_checksums: dict[int, int] = field(default_factory=dict)

    @property
    def functional(self) -> bool:
        return self.data is not None

    def copy(self) -> "ParityBlock":
        return ParityBlock(
            group_id=self.group_id,
            epoch=self.epoch,
            member_vm_ids=self.member_vm_ids,
            logical_bytes=self.logical_bytes,
            stored_on_node=self.stored_on_node,
            data=None if self.data is None else self.data.copy(),
            checksum=self.checksum,
            member_checksums=dict(self.member_checksums),
        )
