"""Virtual machines.

A :class:`VirtualMachine` carries two parallel representations:

* a **logical** size (``memory_bytes``) and dirty rate used by every
  timing model — these can be gigabytes;
* an optional **functional** :class:`MemoryImage` — a real, typically
  scaled-down, byte buffer on which checkpoint capture, parity, and
  recovery operate bit-exactly.

The split keeps Monte-Carlo timing runs allocation-free while letting
correctness tests prove that a reconstructed VM is byte-identical.
"""

from __future__ import annotations

from enum import Enum

from .memory import DEFAULT_PAGE_SIZE, MemoryImage

__all__ = ["VMState", "VirtualMachine", "VMError"]


class VMError(RuntimeError):
    """Illegal VM state transition or misuse."""


class VMState(str, Enum):
    RUNNING = "running"
    PAUSED = "paused"
    MIGRATING = "migrating"
    FAILED = "failed"


#: States in which guest execution makes progress.
_EXECUTING = {VMState.RUNNING}


class VirtualMachine:
    """One guest VM.

    Parameters
    ----------
    vm_id:
        Unique integer id within the cluster.
    memory_bytes:
        Logical image size used by timing models.
    dirty_rate:
        Bytes of guest memory dirtied per second of execution (drives
        incremental checkpoint sizes and pre-copy convergence).
    image_pages / page_size:
        When given, a functional :class:`MemoryImage` is attached.
    name:
        Optional human label (defaults to ``vm<id>``).
    """

    def __init__(
        self,
        vm_id: int,
        memory_bytes: float,
        dirty_rate: float = 0.0,
        image_pages: int | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        name: str | None = None,
    ):
        if memory_bytes <= 0:
            raise VMError(f"memory_bytes must be > 0, got {memory_bytes}")
        if dirty_rate < 0:
            raise VMError(f"dirty_rate must be >= 0, got {dirty_rate}")
        self.vm_id = int(vm_id)
        self.name = name or f"vm{vm_id}"
        self.memory_bytes = float(memory_bytes)
        self.dirty_rate = float(dirty_rate)
        self.state = VMState.RUNNING
        self.node_id: int | None = None
        self.image: MemoryImage | None = (
            MemoryImage(image_pages, page_size) if image_pages else None
        )
        #: checkpoint epochs this VM has committed
        self.epoch = -1

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    @property
    def executing(self) -> bool:
        return self.state in _EXECUTING

    @property
    def functional(self) -> bool:
        return self.image is not None

    def pause(self) -> None:
        if self.state == VMState.FAILED:
            raise VMError(f"{self.name}: cannot pause a failed VM")
        self.state = VMState.PAUSED

    def resume(self) -> None:
        if self.state == VMState.FAILED:
            raise VMError(f"{self.name}: cannot resume a failed VM")
        self.state = VMState.RUNNING

    def begin_migration(self) -> None:
        if self.state != VMState.RUNNING:
            raise VMError(f"{self.name}: can only migrate a running VM (is {self.state})")
        self.state = VMState.MIGRATING

    def end_migration(self) -> None:
        if self.state != VMState.MIGRATING:
            raise VMError(f"{self.name}: not migrating")
        self.state = VMState.RUNNING

    def mark_failed(self) -> None:
        self.state = VMState.FAILED

    def revive(self) -> None:
        """Bring a failed VM back (after reconstruction placed its state)."""
        if self.state != VMState.FAILED:
            raise VMError(f"{self.name}: revive() only applies to failed VMs")
        self.state = VMState.RUNNING

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VM {self.name} {self.memory_bytes / 1e9:.3g}GB {self.state.value}"
            f" node={self.node_id}>"
        )
