"""Page-granular VM memory images with dirty tracking.

A :class:`MemoryImage` is the functional stand-in for a Xen/KVM guest
memory image: a flat byte buffer divided into fixed-size pages, with a
dirty bitmap maintained exactly the way a hypervisor's log-dirty mode
would — every write marks its pages, and checkpoint/migration code
reads-and-clears the bitmap.

Incremental checkpoints are :class:`PageDelta` objects — the "only the
changed pages are needed" representation from Section II-B (Plank's
incremental variant), applied here at hypervisor level.

Snapshot capture is copy-on-write-style: every content mutation stamps
its pages with a monotonically increasing *generation*, and a snapshot
buffer recycled back via :meth:`MemoryImage.recycle_snapshot` carries the
generation it was captured at.  The next :meth:`snapshot` then reuses
that buffer and re-copies only pages written since — so steady-state
capture cost is proportional to the epoch's dirty set, not the image
size.  Contents are bit-identical to a plain full copy (proven by the
golden/differential tests); ``DEFAULT_COW`` / the ``cow`` constructor
flag exist so those tests can run both paths.
"""

from __future__ import annotations

import sys
import weakref
from dataclasses import dataclass

import numpy as np

from .bufpool import GLOBAL_POOL, BufferPool

__all__ = [
    "MemoryImage",
    "PageDelta",
    "recycle_delta",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_COW",
]

#: x86 small page.
DEFAULT_PAGE_SIZE = 4096

#: Default for ``MemoryImage(cow=...)``.  The differential tests flip
#: this to prove COW and plain-copy snapshots are bit-identical.
DEFAULT_COW = True


@dataclass(frozen=True)
class PageDelta:
    """A set of whole pages captured from an image.

    ``indices`` are page numbers (sorted, unique); ``pages`` is the
    matching ``(len(indices), page_size)`` uint8 array.  A delta applied
    to the image state it was diffed against reproduces the newer state.
    """

    page_size: int
    n_pages_total: int
    indices: np.ndarray  # int64, sorted unique
    pages: np.ndarray  # uint8, shape (len(indices), page_size)

    def __post_init__(self) -> None:
        if self.pages.shape != (len(self.indices), self.page_size):
            raise ValueError(
                f"pages shape {self.pages.shape} != ({len(self.indices)}, {self.page_size})"
            )

    @property
    def nbytes(self) -> int:
        """Payload size (page data only; index overhead is negligible)."""
        return int(self.pages.nbytes)

    @property
    def n_pages(self) -> int:
        return len(self.indices)

    def apply_to(self, flat: np.ndarray) -> None:
        """Patch ``flat`` (the full image buffer) in place."""
        view = flat.reshape(self.n_pages_total, self.page_size)
        view[self.indices] = self.pages


def recycle_delta(delta: PageDelta, pool: BufferPool | None = None) -> bool:
    """Return a fully-consumed delta's page buffer to the pool.

    Caller contract: the delta has been applied/folded everywhere it will
    ever be needed and the caller holds the *only* reference to it.  The
    delta is emptied in place (zero pages) so accidental reuse fails
    loudly rather than reading recycled bytes.  Refuses (returns False)
    when any other reference to the delta still exists.
    """
    if pool is None:
        pool = GLOBAL_POOL
    # caller's binding + our parameter + getrefcount's argument == 3
    if not isinstance(delta, PageDelta) or sys.getrefcount(delta) > 3:
        return False
    pages = delta.pages
    base = pages.base if pages.base is not None else pages
    object.__setattr__(delta, "pages", np.empty((0, delta.page_size), dtype=np.uint8))
    object.__setattr__(delta, "indices", np.empty(0, dtype=np.int64))
    del pages
    return pool.recycle(base)


class MemoryImage:
    """Byte-addressable paged memory with hypervisor-style dirty logging.

    Parameters
    ----------
    n_pages:
        Number of pages in the image.
    page_size:
        Bytes per page.
    fill:
        Initial byte value, or ``None`` to leave zeroed.
    cow:
        Enable generation-tracked snapshot reuse (default
        :data:`DEFAULT_COW`).  Purely a performance knob; snapshot
        contents are identical either way.

    Notes
    -----
    The image is deliberately small-scale-friendly: functional tests run
    images of a few hundred pages, while timing models carry a separate
    *logical* size.  Nothing in the parity/recovery code path depends on
    the image being small — the same kernels run at any size.

    The ``pages`` / ``flat`` views are writable but writes through them
    bypass both dirty logging and COW generation tracking; all mutation
    inside this package goes through the methods below.
    """

    def __init__(self, n_pages: int, page_size: int = DEFAULT_PAGE_SIZE,
                 fill: int | None = None, cow: bool | None = None):
        if n_pages < 1:
            raise ValueError(f"need >= 1 page, got {n_pages}")
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.n_pages = int(n_pages)
        self.page_size = int(page_size)
        self._flat = np.zeros(n_pages * page_size, dtype=np.uint8)
        # cached (n_pages, page_size) view; valid because _flat is never
        # rebound after construction (writes go through the buffer)
        self._pages2d = self._flat.reshape(self.n_pages, self.page_size)
        if fill:
            self._flat[:] = fill
        self._dirty = np.zeros(n_pages, dtype=bool)
        self._dirty_count = 0
        self._cow = DEFAULT_COW if cow is None else bool(cow)
        # generation tracking for COW snapshots: _page_gen[p] is the
        # generation of page p's last content write
        self._gen = 0
        self._page_gen = np.zeros(n_pages, dtype=np.int64) if self._cow else None
        # id(buffer) -> (weakref, generation) for buffers snapshot() has
        # handed out; the weakref death callback evicts the entry so a
        # reused id can never alias a stale generation tag
        self._issued: dict[int, tuple[weakref.ref, int]] = {}
        self._retired: tuple[int, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._flat.nbytes

    @property
    def pages(self) -> np.ndarray:
        """(n_pages, page_size) view — no copy."""
        return self._pages2d

    @property
    def flat(self) -> np.ndarray:
        """Flat uint8 view — no copy."""
        return self._flat

    # ------------------------------------------------------------------
    # guest writes
    # ------------------------------------------------------------------
    def _stamp(self, first: int, last: int) -> None:
        if self._page_gen is not None:
            self._gen += 1
            self._page_gen[first : last + 1] = self._gen

    def _stamp_indices(self, idx: np.ndarray) -> None:
        if self._page_gen is not None:
            self._gen += 1
            self._page_gen[idx] = self._gen

    def write(self, addr: int, data: bytes | np.ndarray) -> None:
        """Write bytes at ``addr``, marking every touched page dirty."""
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else np.asarray(data, dtype=np.uint8).reshape(-1)
        end = addr + len(buf)
        if addr < 0 or end > self.nbytes:
            raise IndexError(f"write [{addr}, {end}) outside image of {self.nbytes} bytes")
        self._flat[addr:end] = buf
        first = addr // self.page_size
        last = (end - 1) // self.page_size
        seg = self._dirty[first : last + 1]
        self._dirty_count += int(seg.size - np.count_nonzero(seg))
        seg[:] = True
        self._stamp(first, last)

    def fill_page(self, index: int, value: int) -> None:
        """Overwrite one page with a constant (fast workload writes)."""
        self.pages[index] = value
        if not self._dirty[index]:
            self._dirty[index] = True
            self._dirty_count += 1
        self._stamp(index, index)

    def touch_pages(self, indices: np.ndarray, rng: np.random.Generator | None = None) -> None:
        """Dirty the given pages; with an rng, also scribble random bytes
        into the first 8 bytes of each (cheap content change so deltas
        are non-trivial in functional tests).

        ``indices`` may contain duplicates; accounting is by *unique*
        page, so ``dirty_bytes`` never double-counts a page re-touched
        within one interval.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) == 0:
            return
        uniq = np.unique(idx)
        # unique is sorted, so bounds come from its ends — no extra
        # min/max reduction passes
        if uniq[0] < 0 or uniq[-1] >= self.n_pages:
            raise IndexError(f"page index outside [0, {self.n_pages})")
        self._dirty_count += int(uniq.size - np.count_nonzero(self._dirty[uniq]))
        self._dirty[uniq] = True
        if rng is not None:
            # rng consumption deliberately keyed to len(indices), dupes
            # included — RNG traces must not depend on the accounting fix
            stamp = rng.integers(0, 256, size=(len(idx), 8), dtype=np.uint8)
            self.pages[idx, :8] = stamp
            self._stamp_indices(uniq)

    def read(self, addr: int, length: int) -> np.ndarray:
        if addr < 0 or addr + length > self.nbytes:
            raise IndexError(f"read [{addr}, {addr + length}) outside image")
        return self._flat[addr : addr + length].copy()

    # ------------------------------------------------------------------
    # dirty logging (hypervisor side)
    # ------------------------------------------------------------------
    @property
    def dirty_page_indices(self) -> np.ndarray:
        return np.flatnonzero(self._dirty)

    @property
    def dirty_page_count(self) -> int:
        return self._dirty_count

    @property
    def dirty_bytes(self) -> int:
        return self.dirty_page_count * self.page_size

    def clear_dirty(self) -> None:
        self._dirty[:] = False
        self._dirty_count = 0

    def mark_all_dirty(self) -> None:
        self._dirty[:] = True
        self._dirty_count = self.n_pages

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def snapshot(self) -> np.ndarray:
        """Full copy of the image contents (a *full* checkpoint payload).

        With COW enabled the copy reuses the most recently recycled
        snapshot buffer, re-copying only pages written since that buffer
        was captured.  Either way the caller owns a buffer whose bytes
        equal the image exactly, and the image never writes to it again.
        """
        if not self._cow:
            return self._flat.copy()
        if self._retired is not None:
            rtag, out = self._retired
            self._retired = None
            stale = np.flatnonzero(self._page_gen > rtag)
            if len(stale):
                out.reshape(self.n_pages, self.page_size)[stale] = self.pages[stale]
        else:
            out = GLOBAL_POOL.acquire(self.nbytes)
            np.copyto(out, self._flat)
        self._register(out, self._gen)
        return out

    def _register(self, buf: np.ndarray, tag: int) -> None:
        ident = id(buf)
        self_ref = weakref.ref(self)

        def _evict(_ref, self_ref=self_ref, ident=ident):
            img = self_ref()
            if img is not None:
                img._issued.pop(ident, None)

        self._issued[ident] = (weakref.ref(buf, _evict), tag)

    def recycle_snapshot(self, buf: np.ndarray) -> bool:
        """Hand a buffer returned by :meth:`snapshot` back for reuse.

        Caller contract: it holds the only remaining reference (verified
        via a refcount gate — a buffer still referenced elsewhere is left
        untouched and the call returns False).  Buffers this image did
        not issue fall through to the global pool.
        """
        if not isinstance(buf, np.ndarray):
            return False
        entry = self._issued.pop(id(buf), None) if self._cow else None
        if entry is not None:
            ref, tag = entry
            # caller's binding + our parameter + getrefcount's arg == 3
            if ref() is buf and sys.getrefcount(buf) <= 3:
                old = self._retired
                self._retired = (tag, buf)
                if old is not None:
                    GLOBAL_POOL.recycle(old[1])
                return True
            return False
        return GLOBAL_POOL.recycle(buf, extra_refs=1)

    def capture_delta(self, clear: bool = True) -> PageDelta:
        """Capture currently-dirty pages as a :class:`PageDelta`.

        With ``clear`` (the normal checkpoint path) the dirty log resets,
        beginning the next epoch — the read-and-clear that log-dirty
        hypervisor modes perform atomically at checkpoint time.

        The page matrix lives in a pooled buffer; once the delta has been
        applied/folded everywhere, :func:`recycle_delta` returns it.
        """
        idx = self.dirty_page_indices
        k = len(idx)
        buf = GLOBAL_POOL.acquire(k * self.page_size)
        pages = buf.reshape(k, self.page_size)
        np.take(self.pages, idx, axis=0, out=pages)
        if clear:
            self.clear_dirty()
        return PageDelta(
            page_size=self.page_size,
            n_pages_total=self.n_pages,
            indices=idx.astype(np.int64),
            pages=pages,
        )

    def restore(self, payload: np.ndarray) -> None:
        """Overwrite the whole image from a full snapshot; clears dirty."""
        buf = np.asarray(payload, dtype=np.uint8).reshape(-1)
        if buf.nbytes != self.nbytes:
            raise ValueError(f"payload {buf.nbytes}B != image {self.nbytes}B")
        self._flat[:] = buf
        self.clear_dirty()
        self._stamp(0, self.n_pages - 1)

    def apply_delta(self, delta: PageDelta) -> None:
        """Patch the image with a delta; clears dirty bits of the pages."""
        if delta.n_pages_total != self.n_pages or delta.page_size != self.page_size:
            raise ValueError("delta geometry does not match image")
        delta.apply_to(self._flat)
        self._dirty_count -= int(np.count_nonzero(self._dirty[delta.indices]))
        self._dirty[delta.indices] = False
        self._stamp_indices(delta.indices)

    def equals(self, other: "MemoryImage") -> bool:
        return (
            self.n_pages == other.n_pages
            and self.page_size == other.page_size
            and bool(np.array_equal(self._flat, other._flat))
        )

    # ------------------------------------------------------------------
    # pickling (campaign workers ship scenario state across processes;
    # weakrefs and issued-buffer identity are process-local)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_issued"] = {}
        state["_retired"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
