"""Page-granular VM memory images with dirty tracking.

A :class:`MemoryImage` is the functional stand-in for a Xen/KVM guest
memory image: a flat byte buffer divided into fixed-size pages, with a
dirty bitmap maintained exactly the way a hypervisor's log-dirty mode
would — every write marks its pages, and checkpoint/migration code
reads-and-clears the bitmap.

Incremental checkpoints are :class:`PageDelta` objects — the "only the
changed pages are needed" representation from Section II-B (Plank's
incremental variant), applied here at hypervisor level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MemoryImage", "PageDelta", "DEFAULT_PAGE_SIZE"]

#: x86 small page.
DEFAULT_PAGE_SIZE = 4096


@dataclass(frozen=True)
class PageDelta:
    """A set of whole pages captured from an image.

    ``indices`` are page numbers (sorted, unique); ``pages`` is the
    matching ``(len(indices), page_size)`` uint8 array.  A delta applied
    to the image state it was diffed against reproduces the newer state.
    """

    page_size: int
    n_pages_total: int
    indices: np.ndarray  # int64, sorted unique
    pages: np.ndarray  # uint8, shape (len(indices), page_size)

    def __post_init__(self) -> None:
        if self.pages.shape != (len(self.indices), self.page_size):
            raise ValueError(
                f"pages shape {self.pages.shape} != ({len(self.indices)}, {self.page_size})"
            )

    @property
    def nbytes(self) -> int:
        """Payload size (page data only; index overhead is negligible)."""
        return int(self.pages.nbytes)

    @property
    def n_pages(self) -> int:
        return len(self.indices)

    def apply_to(self, flat: np.ndarray) -> None:
        """Patch ``flat`` (the full image buffer) in place."""
        view = flat.reshape(self.n_pages_total, self.page_size)
        view[self.indices] = self.pages


class MemoryImage:
    """Byte-addressable paged memory with hypervisor-style dirty logging.

    Parameters
    ----------
    n_pages:
        Number of pages in the image.
    page_size:
        Bytes per page.
    fill:
        Initial byte value, or ``None`` to leave zeroed.

    Notes
    -----
    The image is deliberately small-scale-friendly: functional tests run
    images of a few hundred pages, while timing models carry a separate
    *logical* size.  Nothing in the parity/recovery code path depends on
    the image being small — the same kernels run at any size.
    """

    def __init__(self, n_pages: int, page_size: int = DEFAULT_PAGE_SIZE, fill: int | None = None):
        if n_pages < 1:
            raise ValueError(f"need >= 1 page, got {n_pages}")
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.n_pages = int(n_pages)
        self.page_size = int(page_size)
        self._flat = np.zeros(n_pages * page_size, dtype=np.uint8)
        if fill:
            self._flat[:] = fill
        self._dirty = np.zeros(n_pages, dtype=bool)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._flat.nbytes

    @property
    def pages(self) -> np.ndarray:
        """(n_pages, page_size) view — no copy."""
        return self._flat.reshape(self.n_pages, self.page_size)

    @property
    def flat(self) -> np.ndarray:
        """Flat uint8 view — no copy."""
        return self._flat

    # ------------------------------------------------------------------
    # guest writes
    # ------------------------------------------------------------------
    def write(self, addr: int, data: bytes | np.ndarray) -> None:
        """Write bytes at ``addr``, marking every touched page dirty."""
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if isinstance(
            data, (bytes, bytearray)
        ) else np.asarray(data, dtype=np.uint8).reshape(-1)
        end = addr + len(buf)
        if addr < 0 or end > self.nbytes:
            raise IndexError(f"write [{addr}, {end}) outside image of {self.nbytes} bytes")
        self._flat[addr:end] = buf
        first = addr // self.page_size
        last = (end - 1) // self.page_size
        self._dirty[first : last + 1] = True

    def fill_page(self, index: int, value: int) -> None:
        """Overwrite one page with a constant (fast workload writes)."""
        self.pages[index] = value
        self._dirty[index] = True

    def touch_pages(self, indices: np.ndarray, rng: np.random.Generator | None = None) -> None:
        """Dirty the given pages; with an rng, also scribble random bytes
        into the first 8 bytes of each (cheap content change so deltas
        are non-trivial in functional tests)."""
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx) == 0:
            return
        if idx.min() < 0 or idx.max() >= self.n_pages:
            raise IndexError(f"page index outside [0, {self.n_pages})")
        self._dirty[idx] = True
        if rng is not None:
            stamp = rng.integers(0, 256, size=(len(idx), 8), dtype=np.uint8)
            self.pages[idx, :8] = stamp

    def read(self, addr: int, length: int) -> np.ndarray:
        if addr < 0 or addr + length > self.nbytes:
            raise IndexError(f"read [{addr}, {addr + length}) outside image")
        return self._flat[addr : addr + length].copy()

    # ------------------------------------------------------------------
    # dirty logging (hypervisor side)
    # ------------------------------------------------------------------
    @property
    def dirty_page_indices(self) -> np.ndarray:
        return np.flatnonzero(self._dirty)

    @property
    def dirty_page_count(self) -> int:
        return int(self._dirty.sum())

    @property
    def dirty_bytes(self) -> int:
        return self.dirty_page_count * self.page_size

    def clear_dirty(self) -> None:
        self._dirty[:] = False

    def mark_all_dirty(self) -> None:
        self._dirty[:] = True

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def snapshot(self) -> np.ndarray:
        """Full copy of the image contents (a *full* checkpoint payload)."""
        return self._flat.copy()

    def capture_delta(self, clear: bool = True) -> PageDelta:
        """Capture currently-dirty pages as a :class:`PageDelta`.

        With ``clear`` (the normal checkpoint path) the dirty log resets,
        beginning the next epoch — the read-and-clear that log-dirty
        hypervisor modes perform atomically at checkpoint time.
        """
        idx = self.dirty_page_indices
        pages = self.pages[idx].copy()
        if clear:
            self.clear_dirty()
        return PageDelta(
            page_size=self.page_size,
            n_pages_total=self.n_pages,
            indices=idx.astype(np.int64),
            pages=pages,
        )

    def restore(self, payload: np.ndarray) -> None:
        """Overwrite the whole image from a full snapshot; clears dirty."""
        buf = np.asarray(payload, dtype=np.uint8).reshape(-1)
        if buf.nbytes != self.nbytes:
            raise ValueError(f"payload {buf.nbytes}B != image {self.nbytes}B")
        self._flat[:] = buf
        self.clear_dirty()

    def apply_delta(self, delta: PageDelta) -> None:
        """Patch the image with a delta; clears dirty bits of the pages."""
        if delta.n_pages_total != self.n_pages or delta.page_size != self.page_size:
            raise ValueError("delta geometry does not match image")
        delta.apply_to(self._flat)
        self._dirty[delta.indices] = False

    def equals(self, other: "MemoryImage") -> bool:
        return (
            self.n_pages == other.n_pages
            and self.page_size == other.page_size
            and bool(np.array_equal(self._flat, other._flat))
        )
