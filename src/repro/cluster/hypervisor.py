"""Hypervisor-level checkpoint mechanism.

The paper's central systems argument (Section IV-A) is that capture
belongs *below* the kernel: "Applications, user-level libraries, and
even the kernel itself need not be aware that it is being checkpointed."
The :class:`Hypervisor` is that mechanism layer — instantaneous state
operations on the VMs of one node.  All *timing* (how long a pause or a
transfer takes) is charged by the policy layer in
:mod:`repro.checkpoint` and :mod:`repro.core`; keeping
mechanism/policy separate lets every architecture variant (Figs. 1, 3,
4) reuse the same capture code.
"""

from __future__ import annotations

import sys

import numpy as np

from .bufpool import GLOBAL_POOL
from .checksum import block_checksum
from .images import CheckpointImage, CheckpointKind
from .memory import PageDelta
from .node import PhysicalNode
from .vm import VirtualMachine

__all__ = ["Hypervisor", "HypervisorError"]


class HypervisorError(RuntimeError):
    """Capture attempted on state that cannot be captured."""


class Hypervisor:
    """Per-node checkpoint/restore agent."""

    def __init__(self, node: PhysicalNode):
        self.node = node

    def _require_local(self, vm: VirtualMachine) -> None:
        if vm.vm_id not in self.node.vms:
            raise HypervisorError(
                f"vm {vm.vm_id} is not hosted on node {self.node.node_id}"
            )
        if not self.node.alive:
            raise HypervisorError(f"node {self.node.node_id} is down")

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def capture_full(
        self, vm: VirtualMachine, now: float, epoch: int
    ) -> CheckpointImage:
        """Full-image capture.  The VM must already be paused by the
        coordinating policy (consistency requires a global pause point).
        """
        self._require_local(vm)
        payload: np.ndarray | None = None
        if vm.image is not None:
            payload = vm.image.snapshot()
            vm.image.clear_dirty()
        return CheckpointImage(
            vm_id=vm.vm_id,
            epoch=epoch,
            kind=CheckpointKind.FULL,
            logical_bytes=vm.memory_bytes,
            captured_at=now,
            payload=payload,
        )

    def capture_incremental(
        self,
        vm: VirtualMachine,
        now: float,
        epoch: int,
        logical_bytes: float | None = None,
        base_epoch: int | None = None,
    ) -> CheckpointImage:
        """Dirty-page capture (Plank's incremental variant, Section II-B).

        ``logical_bytes`` is what timing models will charge; when the VM
        is functional it defaults to the real delta payload size scaled
        up by ``memory_bytes / image.nbytes`` so logical and functional
        views stay proportional.  Non-functional VMs must pass it.
        """
        self._require_local(vm)
        payload: PageDelta | None = None
        if vm.image is not None:
            payload = vm.image.capture_delta(clear=True)
            if logical_bytes is None:
                scale = vm.memory_bytes / vm.image.nbytes
                logical_bytes = payload.nbytes * scale
        if logical_bytes is None:
            raise HypervisorError(
                "logical_bytes required for incremental capture of a "
                "non-functional VM"
            )
        return CheckpointImage(
            vm_id=vm.vm_id,
            epoch=epoch,
            kind=CheckpointKind.INCREMENTAL,
            logical_bytes=logical_bytes,
            captured_at=now,
            payload=payload,
            base_epoch=base_epoch,
        )

    def capture_forked(
        self, vm: VirtualMachine, now: float, epoch: int
    ) -> CheckpointImage:
        """Copy-on-write (forked) capture: contents equal a full capture,
        but the VM need only pause long enough to fork — the policy layer
        charges the short pause.  Functionally identical payload."""
        self._require_local(vm)
        payload: np.ndarray | None = None
        if vm.image is not None:
            payload = vm.image.snapshot()
            vm.image.clear_dirty()
        return CheckpointImage(
            vm_id=vm.vm_id,
            epoch=epoch,
            kind=CheckpointKind.FORKED,
            logical_bytes=vm.memory_bytes,
            captured_at=now,
            payload=payload,
        )

    # ------------------------------------------------------------------
    # commit / restore
    # ------------------------------------------------------------------
    def commit_checkpoint(self, image: CheckpointImage) -> None:
        """Retain ``image`` as the VM's committed checkpoint in node RAM.

        For incremental images the committed state is the *merged* full
        payload (old committed snapshot patched with the delta) so that a
        single in-memory object always reconstructs the VM — mirroring
        the merge step Plank describes for incremental diskless
        checkpoints.
        """
        if image.kind == CheckpointKind.INCREMENTAL and image.payload is not None:
            prev = self.node.checkpoint_store.get(image.vm_id)
            if prev is None or prev.payload is None:
                raise HypervisorError(
                    f"incremental commit for vm {image.vm_id} without a "
                    "functional base checkpoint"
                )
            delta: PageDelta = image.payload
            prev_payload = prev.payload
            if (
                isinstance(prev_payload, np.ndarray)
                and prev_payload.ndim == 1
                and prev_payload.dtype == np.uint8
                and prev_payload.base is None
                # sole owners: prev is held only by the store, our local,
                # and getrefcount's argument; its payload only by the
                # attribute, our local, and getrefcount's argument
                and sys.getrefcount(prev) <= 3
                and sys.getrefcount(prev_payload) <= 3
            ):
                # Steal the old committed buffer and patch the delta in
                # place: the commit costs O(dirty pages), not O(image).
                prev.payload = None
                merged = prev_payload
            else:
                src = prev.payload_flat()
                merged = GLOBAL_POOL.acquire(src.nbytes)
                np.copyto(merged, src)
            del prev_payload
            delta.apply_to(merged)
            # The committed object is a merged full snapshot: it occupies
            # full-image RAM on the node even though only the delta moved.
            image = CheckpointImage(
                vm_id=image.vm_id,
                epoch=image.epoch,
                kind=CheckpointKind.FULL,
                logical_bytes=prev.logical_bytes,
                captured_at=image.captured_at,
                payload=merged,
                base_epoch=image.base_epoch,
                meta=dict(image.meta, merged_from_incremental=True),
            )
        if isinstance(image.payload, np.ndarray):
            # Commit is the moment the bytes are known good: fingerprint
            # them so restores and scrubs can detect later bit-rot.
            image.meta["checksum"] = block_checksum(image.payload)
        replaced = self.node.checkpoint_store.get(image.vm_id)
        self.node.store_checkpoint(image)
        self._recycle_replaced(replaced, image)

    def _recycle_replaced(self, prev: CheckpointImage | None,
                          image: CheckpointImage) -> None:
        """Recycle the payload of a just-replaced committed checkpoint.

        Only fires when nothing else references the old image (refcount
        gate) — a checkpoint a test or scrubber still holds stays intact.
        """
        if (
            prev is None
            or prev is image
            or not isinstance(prev.payload, np.ndarray)
            # commit_checkpoint's local + our parameter + getrefcount's
            # argument == 3; anything above means an external holder
            or sys.getrefcount(prev) > 3
        ):
            return
        buf = prev.payload
        prev.payload = None
        vm = self.node.vms.get(prev.vm_id)
        if vm is not None and vm.image is not None:
            vm.image.recycle_snapshot(buf)
        else:
            GLOBAL_POOL.recycle(buf)

    def committed(self, vm_id: int) -> CheckpointImage | None:
        return self.node.checkpoint_store.get(vm_id)

    def restore(self, vm: VirtualMachine, image: CheckpointImage) -> None:
        """Load a checkpoint into a (possibly re-hosted) VM."""
        self._require_local(vm)
        if vm.image is not None:
            if image.payload is None:
                raise HypervisorError(
                    f"functional vm {vm.vm_id} needs a functional checkpoint"
                )
            vm.image.restore(image.payload_flat())
        vm.epoch = image.epoch
        if vm.state is not None and vm.state.value == "failed":
            vm.revive()
