"""Physical nodes.

A node hosts VMs and — in diskless checkpointing — volatile in-memory
state: checkpoint buffers for its own VMs and parity blocks for remote
RAID groups.  The defining behaviour for the whole paper is in
:meth:`PhysicalNode.fail`: a crash atomically destroys *everything*
resident — guest VMs, local checkpoints, parity — which is exactly why
group members must live on distinct nodes (orthogonal placement) and why
parity for a group must not live with any member.
"""

from __future__ import annotations

import sys

import numpy as np

from ..cluster.images import CheckpointImage, ParityBlock
from .bufpool import GLOBAL_POOL
from .vm import VirtualMachine

__all__ = ["PhysicalNode", "NodeError"]


class NodeError(RuntimeError):
    """Illegal node operation (e.g. placing on a dead or full node)."""


class PhysicalNode:
    """One physical machine: RAM budget, hosted VMs, volatile stores.

    Parameters
    ----------
    node_id:
        Unique integer id.
    ram_bytes:
        Physical memory; hosting VMs plus in-memory checkpoint/parity
        buffers must fit (enforced by :meth:`check_memory`).
    cpu_cores:
        Informational; used by CPU-cost accounting in the DVDC protocol.
    """

    def __init__(self, node_id: int, ram_bytes: float, cpu_cores: int = 8):
        if ram_bytes <= 0:
            raise NodeError(f"ram_bytes must be > 0, got {ram_bytes}")
        if cpu_cores < 1:
            raise NodeError(f"cpu_cores must be >= 1, got {cpu_cores}")
        self.node_id = int(node_id)
        self.ram_bytes = float(ram_bytes)
        self.cpu_cores = int(cpu_cores)
        self.alive = True
        self.vms: dict[int, VirtualMachine] = {}
        #: committed checkpoint images of *local* VMs, vm_id -> image
        self.checkpoint_store: dict[int, CheckpointImage] = {}
        #: parity blocks this node is responsible for, group_id -> block
        self.parity_store: dict[int, ParityBlock] = {}
        self.failure_count = 0

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def host(self, vm: VirtualMachine) -> None:
        if not self.alive:
            raise NodeError(f"node {self.node_id} is down")
        if vm.vm_id in self.vms:
            raise NodeError(f"vm {vm.vm_id} already on node {self.node_id}")
        if vm.node_id is not None:
            raise NodeError(
                f"vm {vm.vm_id} still registered on node {vm.node_id}; evict first"
            )
        self.vms[vm.vm_id] = vm
        vm.node_id = self.node_id
        self.check_memory()

    def evict(self, vm: VirtualMachine) -> None:
        if vm.vm_id not in self.vms:
            raise NodeError(f"vm {vm.vm_id} not on node {self.node_id}")
        del self.vms[vm.vm_id]
        vm.node_id = None

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    @property
    def vm_bytes(self) -> float:
        return sum(vm.memory_bytes for vm in self.vms.values())

    @property
    def checkpoint_bytes(self) -> float:
        return sum(c.logical_bytes for c in self.checkpoint_store.values())

    @property
    def parity_bytes(self) -> float:
        return sum(p.logical_bytes for p in self.parity_store.values())

    @property
    def used_bytes(self) -> float:
        return self.vm_bytes + self.checkpoint_bytes + self.parity_bytes

    @property
    def free_bytes(self) -> float:
        return self.ram_bytes - self.used_bytes

    def check_memory(self) -> None:
        """Raise if resident state exceeds physical RAM."""
        if self.used_bytes > self.ram_bytes * (1 + 1e-9):
            raise NodeError(
                f"node {self.node_id} over-committed: "
                f"{self.used_bytes:.3g} > {self.ram_bytes:.3g} bytes"
            )

    # ------------------------------------------------------------------
    # volatile stores
    # ------------------------------------------------------------------
    def store_checkpoint(self, image: CheckpointImage) -> None:
        if not self.alive:
            raise NodeError(f"node {self.node_id} is down")
        self.checkpoint_store[image.vm_id] = image
        self.check_memory()

    def store_parity(self, block: ParityBlock) -> None:
        if not self.alive:
            raise NodeError(f"node {self.node_id} is down")
        block.stored_on_node = self.node_id
        prev = self.parity_store.get(block.group_id)
        self.parity_store[block.group_id] = block
        if (
            prev is not None
            and prev is not block
            and isinstance(prev.data, np.ndarray)
            # our local + getrefcount's argument == 2; anything above
            # means some other code still holds the replaced block
            and sys.getrefcount(prev) <= 2
        ):
            buf = prev.data
            prev.data = None
            GLOBAL_POOL.recycle(buf)
        self.check_memory()

    # ------------------------------------------------------------------
    # failure / repair
    # ------------------------------------------------------------------
    def fail(self) -> list[VirtualMachine]:
        """Crash the node: all resident VMs die, volatile stores vanish.

        Returns the list of VMs that were lost (now in FAILED state and
        no longer registered here).
        """
        if not self.alive:
            return []
        self.alive = False
        self.failure_count += 1
        lost = list(self.vms.values())
        for vm in lost:
            vm.mark_failed()
            vm.node_id = None
        self.vms.clear()
        self.checkpoint_store.clear()
        self.parity_store.clear()
        return lost

    def repair(self) -> None:
        """Bring the node back, empty."""
        self.alive = True

    def deactivate(self) -> None:
        """Power the node down *cleanly* as a cold spare.

        Unlike :meth:`fail` this is only legal on an empty node — spares
        are provisioned before any VMs land on them — and does not bump
        ``failure_count``.  A spare is brought online with :meth:`repair`
        (the cluster's ``repair_node`` path), after which placement sees
        an empty, maximally-free node.
        """
        if self.vms or self.checkpoint_store or self.parity_store:
            raise NodeError(
                f"node {self.node_id} holds state; only empty nodes can be spares"
            )
        self.alive = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "DOWN"
        return (
            f"<Node {self.node_id} {state} vms={sorted(self.vms)} "
            f"mem {self.used_bytes / 1e9:.3g}/{self.ram_bytes / 1e9:.3g}GB>"
        )
