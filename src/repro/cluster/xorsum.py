"""Vectorized XOR kernels for parity computation.

Parity in DVDC is plain RAID-style XOR over VM checkpoint images.  The
kernels below are the only place the package touches raw bytes for
parity, so they are written for throughput: operations are whole-array
``np.bitwise_xor`` calls over ``uint8`` buffers (memory-bandwidth bound,
no Python-level loops), with in-place variants to avoid temporaries —
following the in-place/no-copies guidance for numerical Python.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_u8",
    "xor_reduce",
    "xor_reduce_padded",
    "xor_reduce_groups",
    "xor_fold_groups",
    "xor_into",
    "xor_pairs",
    "reconstruct_missing",
    "reconstruct_missing_padded",
    "is_zero",
    "measure_xor_bandwidth",
]


def as_u8(buf: np.ndarray | bytes | bytearray) -> np.ndarray:
    """View any buffer as a flat uint8 array (no copy where possible).

    ``bytes``/``bytearray`` map zero-copy through ``np.frombuffer`` (the
    bytearray view is writable, so in-place kernels mutate the original).
    Contiguous arrays map to a flat view; *non-contiguous* arrays cannot
    be viewed flat, so the result is a contiguous **copy** — in-place
    callers must detect that (``np.shares_memory``) and write back, as
    :func:`xor_into` does.
    """
    if isinstance(buf, (bytes, bytearray)):
        return np.frombuffer(buf, dtype=np.uint8)
    arr = np.asarray(buf)
    return arr.reshape(-1).view(np.uint8)


def _check_same_length(bufs: Sequence[np.ndarray]) -> int:
    n = bufs[0].shape[0]
    for b in bufs[1:]:
        if b.shape[0] != n:
            raise ValueError(
                f"parity members must have equal length, got {n} vs {b.shape[0]}"
            )
    return n


def xor_reduce(buffers: Iterable[np.ndarray | bytes]) -> np.ndarray:
    """XOR of all buffers: ``b0 ^ b1 ^ ... ^ bk``.

    Returns a fresh uint8 array.  With one buffer, returns a copy.
    """
    bufs = [as_u8(b) for b in buffers]
    if not bufs:
        raise ValueError("xor_reduce needs at least one buffer")
    _check_same_length(bufs)
    out = bufs[0].copy()
    for b in bufs[1:]:
        np.bitwise_xor(out, b, out=out)
    return out


def xor_reduce_padded(
    buffers: Iterable[np.ndarray | bytes], out: np.ndarray | None = None
) -> np.ndarray:
    """XOR of buffers of *unequal* length, zero-padded to the longest.

    RAID over heterogeneous VM images: a short member behaves as if
    zero-extended, so parity is as long as the largest image and any
    single member remains recoverable (reconstruct, then truncate to
    the member's own length).

    ``out``, if given, must be a flat uint8 array at least as long as the
    longest buffer; the result lands in ``out[:longest]`` (zeroed first)
    and that slice is returned — lets parity exchange fold through pooled
    scratch instead of allocating per call.
    """
    bufs = [as_u8(b) for b in buffers]
    if not bufs:
        raise ValueError("xor_reduce_padded needs at least one buffer")
    n = max(b.shape[0] for b in bufs)
    if out is None:
        acc = np.zeros(n, dtype=np.uint8)
    else:
        if out.dtype != np.uint8 or out.ndim != 1 or out.shape[0] < n:
            raise ValueError(
                f"out must be a flat uint8 array of >= {n} bytes"
            )
        # exact-length out is returned as-is (not a sliced view) so the
        # caller can later recycle it to a buffer pool
        acc = out if out.shape[0] == n else out[:n]
        acc[:] = 0
    for b in bufs:
        np.bitwise_xor(acc[: b.shape[0]], b, out=acc[: b.shape[0]])
    return acc


def xor_reduce_groups(group_flats: Sequence[Sequence[np.ndarray]]) -> np.ndarray:
    """Stacked XOR reduce over many same-shaped parity groups at once.

    ``group_flats`` holds, per group, the flat uint8 member images; every
    member across every group must have the same length and every group
    the same member count (the caller partitions by shape signature).
    Returns a ``(G, L)`` uint8 array whose row ``i`` equals
    ``xor_reduce(group_flats[i])`` bit for bit — XOR is associative and
    commutative, so one ``np.bitwise_xor.reduce`` over the member axis
    reproduces the sequential per-group fold exactly.  One kernel call
    replaces ``G * (M - 1)`` small ones, which is what makes the
    per-cycle parity encode scale to thousands of groups.
    """
    n_groups = len(group_flats)
    if n_groups == 0:
        raise ValueError("xor_reduce_groups needs at least one group")
    n_members = len(group_flats[0])
    length = group_flats[0][0].shape[0]
    stack = np.empty((n_groups, n_members, length), dtype=np.uint8)
    for i, flats in enumerate(group_flats):
        if len(flats) != n_members:
            raise ValueError("all groups must have the same member count")
        row = stack[i]
        for j, f in enumerate(flats):
            if f.shape[0] != length:
                raise ValueError("all members must have the same length")
            row[j] = f
    return np.bitwise_xor.reduce(stack, axis=1)


def xor_fold_groups(
    prev_rows: Sequence[np.ndarray],
    group_folds: Sequence[Sequence[tuple[np.ndarray, np.ndarray]]],
    n_pages_total: int,
    page_size: int,
) -> np.ndarray:
    """Batched RAID small-write update across many parity groups.

    ``prev_rows[i]`` is group *i*'s previous flat parity block
    (``n_pages_total * page_size`` bytes); ``group_folds[i]`` holds that
    group's member deltas as ``(page_indices, pages)`` pairs, where
    ``pages`` is ``(k, page_size)`` of ``old ⊕ new`` dirty-page bytes.
    Returns a fresh ``(G, n_pages_total * page_size)`` array of folded
    parity — input rows are not mutated.

    The fold runs member-slot-major: slot *j* of every group scatters in
    one gather/xor/scatter triple (indices from different groups land in
    disjoint row ranges, so the fancy-indexed update is well-defined).
    Two members of the *same* group may dirty the same page; they sit in
    different slots, and slot *j+1* gathers after slot *j* scattered, so
    overlapping updates chain exactly like the sequential fold — and XOR
    commutativity makes the slot-major order bit-identical to the
    group-major one.
    """
    n_groups = len(prev_rows)
    if n_groups != len(group_folds):
        raise ValueError("prev_rows and group_folds must be the same length")
    nbytes = n_pages_total * page_size
    out = np.empty((n_groups, nbytes), dtype=np.uint8)
    for i, prev in enumerate(prev_rows):
        if prev.shape[0] != nbytes:
            raise ValueError(
                f"group {i}: parity block is {prev.shape[0]}B, expected {nbytes}B"
            )
        out[i] = prev
    pages_view = out.reshape(n_groups * n_pages_total, page_size)
    max_slots = max((len(folds) for folds in group_folds), default=0)
    for slot in range(max_slots):
        idx_parts = []
        page_parts = []
        for i, folds in enumerate(group_folds):
            if slot < len(folds):
                indices, pages = folds[slot]
                idx_parts.append(indices + i * n_pages_total)
                page_parts.append(pages)
        idx = np.concatenate(idx_parts)
        pages = np.vstack(page_parts)
        gathered = pages_view[idx]
        np.bitwise_xor(gathered, pages, out=gathered)
        pages_view[idx] = gathered
    return out


def reconstruct_missing_padded(
    survivors: Iterable[np.ndarray | bytes],
    parity: np.ndarray | bytes,
    nbytes: int,
) -> np.ndarray:
    """Recover a missing member of a padded heterogeneous group.

    ``nbytes`` is the missing member's own length (metadata the
    recovery layer carries); the zero-padded remainder is discarded.
    """
    p = as_u8(parity).copy()
    for b in survivors:
        bb = as_u8(b)
        if bb.shape[0] > p.shape[0]:
            raise ValueError("survivor longer than parity buffer")
        np.bitwise_xor(p[: bb.shape[0]], bb, out=p[: bb.shape[0]])
    if nbytes > p.shape[0]:
        raise ValueError(f"requested {nbytes}B exceeds parity length {p.shape[0]}")
    return p[:nbytes].copy()


def xor_into(dst: np.ndarray, src: np.ndarray | bytes) -> np.ndarray:
    """In-place ``dst ^= src``; returns ``dst``.

    This is the parity *update* primitive: applying a delta (old ^ new)
    to an existing parity buffer without materializing intermediates.

    ``dst`` must be mutable.  Non-contiguous arrays are supported:
    :func:`as_u8` has to *copy* such inputs (``reshape(-1)`` on a strided
    view materializes a new buffer), so the XOR result is explicitly
    written back into ``dst`` — without that write-back the update would
    silently land in a temporary and be lost.
    """
    if isinstance(dst, bytes):
        raise TypeError("xor_into requires a mutable destination, got bytes")
    d = as_u8(dst)
    s = as_u8(src)
    _check_same_length([d, s])
    if isinstance(dst, bytearray):
        np.bitwise_xor(d, s, out=d)
        dst[:] = d.tobytes()
        return dst
    np.bitwise_xor(d, s, out=d)
    if not np.shares_memory(d, dst):
        # as_u8 copied (non-contiguous dst): write the result back
        dst[...] = d.view(dst.dtype).reshape(dst.shape)
    return dst


def xor_pairs(a: np.ndarray | bytes, b: np.ndarray | bytes) -> np.ndarray:
    """Fresh ``a ^ b`` — used to form incremental parity deltas."""
    aa, bb = as_u8(a), as_u8(b)
    _check_same_length([aa, bb])
    return np.bitwise_xor(aa, bb)


def reconstruct_missing(
    survivors: Iterable[np.ndarray | bytes], parity: np.ndarray | bytes
) -> np.ndarray:
    """Recover the single missing member of a RAID-5 style group.

    ``parity == XOR(all members)`` implies
    ``missing == parity ^ XOR(survivors)``.
    """
    bufs = [as_u8(b) for b in survivors]
    p = as_u8(parity).copy()
    for b in bufs:
        _check_same_length([p, b])
        np.bitwise_xor(p, b, out=p)
    return p


def is_zero(buf: np.ndarray | bytes) -> bool:
    """True iff every byte is zero (zero-page detection for compression)."""
    return not as_u8(buf).any()


def measure_xor_bandwidth(nbytes: int = 1 << 24, repeats: int = 3) -> float:
    """Measure achievable in-memory XOR throughput on this host.

    Returns bytes/second of ``dst ^= src`` streaming (reads 2·n, writes
    n; reported as n/t matching how the model's ``memory_xor_bandwidth``
    parameter is defined).  Used to calibrate the analytical model to
    the machine running the benchmarks.
    """
    a = np.random.default_rng(0).integers(0, 256, size=nbytes, dtype=np.uint8)
    b = a.copy()
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.bitwise_xor(b, a, out=b)
        dt = time.perf_counter() - t0
        if dt > 0:
            best = max(best, nbytes / dt)
    return best
