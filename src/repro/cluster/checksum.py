"""End-to-end block checksums for checkpoint artifacts.

The recovery correctness argument (Sections IV & VI) silently assumes
memory and links never flip a bit.  Real clusters see silent corruption
— DRAM bit-rot, DMA errors, buggy NIC offload — and a diskless scheme
is *more* exposed than a diskful one because every artifact lives in
volatile RAM with no filesystem-level scrubbing underneath it.

This module gives every checkpoint artifact a cheap content fingerprint:
a CRC-32 (via :mod:`zlib`, vectorized C) folded with the block length so
truncation and content damage are both caught.  Checksums are computed
at *commit/stage* time (the moment bytes are known good), verified on
reconstruct, and re-verified periodically by the
:class:`~repro.resilience.scrubber.Scrubber`.

The functions accept any ndarray and hash its raw bytes; timing-only
artifacts (``payload is None``) simply have no checksum.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "block_checksum", "block_checksums_rows", "page_checksums", "checksum_ok",
]


def _flat_bytes(data: np.ndarray) -> np.ndarray:
    if data.dtype == np.uint8 and data.ndim == 1 and data.flags.c_contiguous:
        return data  # already the byte view — skip three no-op copies
    return np.ascontiguousarray(data).reshape(-1).view(np.uint8)


def block_checksum(data: np.ndarray) -> int:
    """Content fingerprint of a block: CRC-32 of the bytes, mixed with
    the byte length in the high word (catches truncation/extension that
    a bare CRC of a prefix could miss)."""
    b = _flat_bytes(data)
    # a contiguous uint8 array exposes the buffer protocol, so crc32
    # streams it in place — no tobytes copy
    crc = zlib.crc32(b)
    return (b.size & 0xFFFFFFFF) << 32 | crc


def block_checksums_rows(rows: np.ndarray) -> list[int]:
    """:func:`block_checksum` of every row of a 2-D uint8 array.

    Rows of a C-contiguous array expose the buffer protocol directly, so
    each CRC streams the row in place — no per-row ``tobytes`` copy.
    Values are bit-identical to calling :func:`block_checksum` per row
    (same bytes, same CRC, same length mix).
    """
    if rows.ndim != 2 or rows.dtype != np.uint8:
        raise ValueError("block_checksums_rows expects a 2-D uint8 array")
    rows = np.ascontiguousarray(rows)
    hi = (rows.shape[1] & 0xFFFFFFFF) << 32
    crc32 = zlib.crc32
    return [hi | crc32(row) for row in rows]


def page_checksums(data: np.ndarray, page_size: int) -> list[int]:
    """Per-page fingerprints (the rolling form used to localize damage).

    The last page may be short; its checksum covers the short tail.
    """
    if page_size < 1:
        raise ValueError(f"page_size must be >= 1, got {page_size}")
    b = _flat_bytes(data)
    return [
        block_checksum(b[off: off + page_size])
        for off in range(0, b.size, page_size)
    ]


def checksum_ok(data: np.ndarray | None, expected: int | None) -> bool:
    """True when ``data`` matches ``expected``; vacuously true when
    either side is absent (timing-only artifacts carry no checksum)."""
    if data is None or expected is None:
        return True
    return block_checksum(data) == expected
