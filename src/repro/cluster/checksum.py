"""End-to-end block checksums for checkpoint artifacts.

The recovery correctness argument (Sections IV & VI) silently assumes
memory and links never flip a bit.  Real clusters see silent corruption
— DRAM bit-rot, DMA errors, buggy NIC offload — and a diskless scheme
is *more* exposed than a diskful one because every artifact lives in
volatile RAM with no filesystem-level scrubbing underneath it.

This module gives every checkpoint artifact a cheap content fingerprint:
a CRC-32 (via :mod:`zlib`, vectorized C) folded with the block length so
truncation and content damage are both caught.  Checksums are computed
at *commit/stage* time (the moment bytes are known good), verified on
reconstruct, and re-verified periodically by the
:class:`~repro.resilience.scrubber.Scrubber`.

The functions accept any ndarray and hash its raw bytes; timing-only
artifacts (``payload is None``) simply have no checksum.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["block_checksum", "page_checksums", "checksum_ok"]


def _flat_bytes(data: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(data).reshape(-1).view(np.uint8)


def block_checksum(data: np.ndarray) -> int:
    """Content fingerprint of a block: CRC-32 of the bytes, mixed with
    the byte length in the high word (catches truncation/extension that
    a bare CRC of a prefix could miss)."""
    b = _flat_bytes(data)
    crc = zlib.crc32(b.tobytes())
    return (b.size & 0xFFFFFFFF) << 32 | crc


def page_checksums(data: np.ndarray, page_size: int) -> list[int]:
    """Per-page fingerprints (the rolling form used to localize damage).

    The last page may be short; its checksum covers the short tail.
    """
    if page_size < 1:
        raise ValueError(f"page_size must be >= 1, got {page_size}")
    b = _flat_bytes(data)
    return [
        block_checksum(b[off: off + page_size])
        for off in range(0, b.size, page_size)
    ]


def checksum_ok(data: np.ndarray | None, expected: int | None) -> bool:
    """True when ``data`` matches ``expected``; vacuously true when
    either side is absent (timing-only artifacts carry no checksum)."""
    if data is None or expected is None:
        return True
    return block_checksum(data) == expected
