"""The virtualized cluster: nodes + network + NAS + failure wiring.

:class:`VirtualCluster` is the facade the core protocols operate on.  It
owns the physical nodes (each with a hypervisor), the switched topology,
the shared NAS, and the VM registry, and it translates node-failure
events into the state changes every layer above observes (VMs die,
volatile stores vanish).
"""

from __future__ import annotations


from ..network.topology import (
    DEFAULT_LATENCY,
    DEFAULT_NAS_BANDWIDTH,
    GBE_BANDWIDTH,
    SwitchedTopology,
)
from ..sim import NULL_TRACER, Simulator, Tracer
from ..storage.disk import DiskSpec
from ..storage.nas import NAS
from .hypervisor import Hypervisor
from .node import NodeError, PhysicalNode
from .vm import VirtualMachine

__all__ = ["VirtualCluster", "ClusterSpec"]

#: Generous default so RAM accounting never binds unless a test wants it to.
DEFAULT_NODE_RAM = 256e9


class ClusterSpec:
    """Bag of constructor parameters for :class:`VirtualCluster`.

    Mirrors the Fig. 5 configuration by default: values are overridable
    per experiment.
    """

    def __init__(
        self,
        n_nodes: int = 4,
        node_ram: float = DEFAULT_NODE_RAM,
        cpu_cores: int = 8,
        node_bandwidth: float = GBE_BANDWIDTH,
        nas_bandwidth: float = DEFAULT_NAS_BANDWIDTH,
        nas_disk: DiskSpec | None = None,
        latency: float = DEFAULT_LATENCY,
        allocator: str = "incremental",
        topology_factory=None,
    ):
        if n_nodes < 1:
            raise ValueError(f"need >= 1 node, got {n_nodes}")
        self.n_nodes = n_nodes
        self.node_ram = node_ram
        self.cpu_cores = cpu_cores
        self.node_bandwidth = node_bandwidth
        self.nas_bandwidth = nas_bandwidth
        self.nas_disk = nas_disk or DiskSpec(bandwidth=nas_bandwidth, channels=1)
        self.latency = latency
        #: fluid-flow reallocation strategy (see repro.network.link)
        self.allocator = allocator
        #: optional ``(sim, spec, tracer) -> ClusterTopology`` override;
        #: None keeps the flat switched fabric (see repro.geo for the
        #: hierarchical multi-site variant)
        self.topology_factory = topology_factory


class VirtualCluster:
    """Nodes, hypervisors, network, NAS, and the VM registry."""

    def __init__(
        self,
        sim: Simulator,
        spec: ClusterSpec | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.spec = spec or ClusterSpec()
        self.tracer = tracer
        self.nodes: list[PhysicalNode] = [
            PhysicalNode(i, self.spec.node_ram, self.spec.cpu_cores)
            for i in range(self.spec.n_nodes)
        ]
        self.hypervisors: list[Hypervisor] = [Hypervisor(n) for n in self.nodes]
        if self.spec.topology_factory is not None:
            self.topology = self.spec.topology_factory(sim, self.spec, tracer)
        else:
            self.topology = SwitchedTopology(
                sim,
                self.spec.n_nodes,
                node_bandwidth=self.spec.node_bandwidth,
                nas_bandwidth=self.spec.nas_bandwidth,
                latency=self.spec.latency,
                tracer=tracer,
                allocator=self.spec.allocator,
            )
        self.nas = NAS(sim, disk_spec=self.spec.nas_disk, tracer=tracer)
        self.vms: dict[int, VirtualMachine] = {}
        self._next_vm_id = 0
        #: bumped on every node crash; protocols snapshot it at cycle
        #: start and abort their commit if it moved (two-phase safety)
        self.failure_epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    def create_vm(
        self,
        node_id: int,
        memory_bytes: float,
        dirty_rate: float = 0.0,
        image_pages: int | None = None,
        page_size: int = 4096,
        name: str | None = None,
    ) -> VirtualMachine:
        """Create a VM and host it on ``node_id``."""
        vm = VirtualMachine(
            self._next_vm_id,
            memory_bytes,
            dirty_rate=dirty_rate,
            image_pages=image_pages,
            page_size=page_size,
            name=name,
        )
        self._next_vm_id += 1
        self.node(node_id).host(vm)
        self.vms[vm.vm_id] = vm
        return vm

    def create_vms_balanced(
        self,
        n_vms: int,
        memory_bytes: float,
        dirty_rate: float = 0.0,
        image_pages: int | None = None,
        page_size: int = 4096,
    ) -> list[VirtualMachine]:
        """Round-robin ``n_vms`` identical VMs across all nodes — the
        Fig. 4 layout when ``n_vms == 3 · n_nodes``."""
        return [
            self.create_vm(
                i % self.n_nodes,
                memory_bytes,
                dirty_rate=dirty_rate,
                image_pages=image_pages,
                page_size=page_size,
            )
            for i in range(n_vms)
        ]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> PhysicalNode:
        if not (0 <= node_id < len(self.nodes)):
            raise NodeError(f"node id {node_id} out of range")
        return self.nodes[node_id]

    def hypervisor(self, node_id: int) -> Hypervisor:
        self.node(node_id)
        return self.hypervisors[node_id]

    def vm(self, vm_id: int) -> VirtualMachine:
        try:
            return self.vms[vm_id]
        except KeyError:
            raise NodeError(f"unknown vm id {vm_id}") from None

    def vms_on(self, node_id: int) -> list[VirtualMachine]:
        return [self.vms[v] for v in sorted(self.node(node_id).vms)]

    @property
    def alive_nodes(self) -> list[PhysicalNode]:
        return [n for n in self.nodes if n.alive]

    @property
    def all_vms(self) -> list[VirtualMachine]:
        return [self.vms[k] for k in sorted(self.vms)]

    # ------------------------------------------------------------------
    # failure / repair / movement
    # ------------------------------------------------------------------
    def kill_node(self, node_id: int) -> list[VirtualMachine]:
        """Crash a node; returns the VMs that died with it."""
        lost = self.node(node_id).fail()
        self.failure_epoch += 1
        torn = self.topology.abort_node_flows(node_id, f"node {node_id} failed")
        if torn:
            self.tracer.emit(self.sim.now, "cluster.flows_aborted",
                             node=node_id, flows=torn)
        self.tracer.emit(
            self.sim.now, "cluster.node_failed", node=node_id,
            lost_vms=[vm.vm_id for vm in lost],
        )
        return lost

    def repair_node(self, node_id: int) -> None:
        self.node(node_id).repair()
        self.tracer.emit(self.sim.now, "cluster.node_repaired", node=node_id)

    def move_vm(self, vm_id: int, dst_node_id: int) -> None:
        """Instantaneous re-registration (the *bookkeeping* part of
        migration; the timed transfer lives in :mod:`repro.migration`)."""
        vm = self.vm(vm_id)
        if vm.node_id is not None:
            self.node(vm.node_id).evict(vm)
        self.node(dst_node_id).host(vm)

    def place_failed_vm(self, vm_id: int, dst_node_id: int) -> None:
        """Host a failed (crashed) VM on a new node prior to restore."""
        vm = self.vm(vm_id)
        if vm.node_id is not None:
            raise NodeError(f"vm {vm_id} is still hosted on node {vm.node_id}")
        self.node(dst_node_id).host(vm)
