"""Virtualized-cluster substrate: memory, VMs, nodes, hypervisors."""

from .cluster import ClusterSpec, VirtualCluster
from .hypervisor import Hypervisor, HypervisorError
from .images import CheckpointImage, CheckpointKind, ParityBlock
from .memory import DEFAULT_PAGE_SIZE, MemoryImage, PageDelta
from .node import NodeError, PhysicalNode
from .vm import VirtualMachine, VMError, VMState
from .xorsum import (
    as_u8,
    is_zero,
    measure_xor_bandwidth,
    reconstruct_missing,
    reconstruct_missing_padded,
    xor_into,
    xor_pairs,
    xor_reduce,
    xor_reduce_padded,
)

__all__ = [
    "MemoryImage",
    "PageDelta",
    "DEFAULT_PAGE_SIZE",
    "VirtualMachine",
    "VMState",
    "VMError",
    "PhysicalNode",
    "NodeError",
    "Hypervisor",
    "HypervisorError",
    "CheckpointImage",
    "CheckpointKind",
    "ParityBlock",
    "VirtualCluster",
    "ClusterSpec",
    "xor_reduce",
    "xor_reduce_padded",
    "xor_into",
    "xor_pairs",
    "reconstruct_missing",
    "reconstruct_missing_padded",
    "as_u8",
    "is_zero",
    "measure_xor_bandwidth",
]
