"""Terminal line plots for sweep results.

Renders Fig. 5-style curves as ASCII so the benchmark harness can show
the *shape* (who wins, where the minima fall) directly in test output
without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["ascii_plot"]


def ascii_plot(
    series: Sequence[tuple[str, np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    title: str | None = None,
    marks: Sequence[tuple[float, float]] | None = None,
) -> str:
    """Plot (label, x, y) series on one canvas.

    ``marks`` places an ``X`` at the given data coordinates (the optimal
    intervals in Fig. 5).  Series get the glyphs ``* + o #`` in order.
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "*+o#%@"
    xs_all = np.concatenate([np.asarray(s[1], dtype=float) for s in series])
    ys_all = np.concatenate([np.asarray(s[2], dtype=float) for s in series])
    finite = np.isfinite(xs_all) & np.isfinite(ys_all)
    if not finite.any():
        raise ValueError("no finite data to plot")
    x_lo, x_hi = xs_all[finite].min(), xs_all[finite].max()
    y_lo, y_hi = ys_all[finite].min(), ys_all[finite].max()
    if logx:
        if x_lo <= 0:
            raise ValueError("logx requires positive x values")
        x_lo, x_hi = math.log10(x_lo), math.log10(x_hi)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def to_col(x: float) -> int:
        v = math.log10(x) if logx else x
        return int(round((v - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))

    canvas = [[" "] * width for _ in range(height)]
    for si, (label, xs, ys) in enumerate(series):
        g = glyphs[si % len(glyphs)]
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            c, r = to_col(x), to_row(y)
            if 0 <= r < height and 0 <= c < width:
                canvas[r][c] = g
    if marks:
        for x, y in marks:
            c, r = to_col(x), to_row(y)
            if 0 <= r < height and 0 <= c < width:
                canvas[r][c] = "X"

    lines = []
    if title:
        lines.append(title)
    y_labels = [y_hi, (y_lo + y_hi) / 2.0, y_lo]
    label_rows = {0: 0, height // 2: 1, height - 1: 2}
    for r in range(height):
        prefix = (
            f"{y_labels[label_rows[r]]:>10.4g} |" if r in label_rows else " " * 10 + " |"
        )
        lines.append(prefix + "".join(canvas[r]))
    lines.append(" " * 10 + "+" + "-" * width)
    x_left = 10 ** x_lo if logx else x_lo
    x_right = 10 ** x_hi if logx else x_hi
    lines.append(f"{'':10} {x_left:<12.4g}{'':{max(0, width - 24)}}{x_right:>12.4g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}" for i, (label, _, _) in enumerate(series)
    )
    lines.append(" " * 11 + legend + ("   X optimum" if marks else ""))
    return "\n".join(lines)
