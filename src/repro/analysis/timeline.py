"""ASCII timeline rendering of simulation traces.

Turns a :class:`~repro.sim.trace.Tracer` into a lane-per-event-kind
Gantt-style strip, so an experiment's story — checkpoints ticking,
failures striking, recoveries running — is visible directly in
terminal output.  Used by the examples and handy when debugging
protocol interleavings.
"""

from __future__ import annotations

from ..sim.trace import Tracer

__all__ = ["render_timeline"]

#: Default lane mapping: kind prefix -> (label, glyph).
DEFAULT_LANES = [
    ("diskless.cycle", "checkpoint", "c"),
    ("diskful.cycle", "checkpoint", "c"),
    ("rdp.cycle", "checkpoint", "c"),
    ("failure.node", "failure", "X"),
    ("cluster.node_failed", "failure", "X"),
    ("diskless.recovery", "recovery", "R"),
    ("diskful.recovery", "recovery", "R"),
    ("rdp.recovery", "recovery", "R"),
    ("cluster.node_repaired", "repair", "+"),
    ("diskless.heal", "heal", "h"),
    ("migration.done", "migration", "m"),
]


def render_timeline(
    tracer: Tracer,
    width: int = 78,
    start: float | None = None,
    end: float | None = None,
    lanes: list[tuple[str, str, str]] | None = None,
    title: str | None = None,
) -> str:
    """Render trace records as labeled character lanes over time.

    Each configured lane collects the records whose kind starts with its
    prefix; every record paints its glyph at the proportional column.
    Overlapping records in one cell keep the glyph (density is shown by
    runs, exact counts by the trailing tally).
    """
    lanes = lanes if lanes is not None else DEFAULT_LANES
    if not tracer.records:
        return "(no trace records)"
    times = [r.time for r in tracer.records]
    t0 = min(times) if start is None else start
    t1 = max(times) if end is None else end
    if t1 <= t0:
        t1 = t0 + 1.0

    # group lanes by label, preserving order
    by_label: dict[str, tuple[str, list[str]]] = {}
    for prefix, label, glyph in lanes:
        by_label.setdefault(label, (glyph, []))[1].append(prefix)

    out: list[str] = []
    if title:
        out.append(title)
    label_w = max((len(lbl) for lbl in by_label), default=0)
    for label, (glyph, prefixes) in by_label.items():
        row = [" "] * width
        count = 0
        for r in tracer.records:
            if not (t0 <= r.time <= t1):
                continue
            if any(r.kind.startswith(p) for p in prefixes):
                col = int((r.time - t0) / (t1 - t0) * (width - 1))
                row[col] = glyph
                count += 1
        if count:
            out.append(f"{label:>{label_w}} |{''.join(row)}| {count}")
    out.append(f"{'':>{label_w}}  {t0:<12.6g}{'':{max(0, width - 24)}}{t1:>12.6g}")
    return "\n".join(out)
