"""Analysis helpers: statistics, text tables, ASCII figures."""

from .figures import ascii_plot
from .stats import Summary, bootstrap_ci, relative_error, summarize
from .tables import format_bytes, format_seconds, render_table
from .timeline import render_timeline

__all__ = [
    "Summary",
    "summarize",
    "bootstrap_ci",
    "relative_error",
    "ascii_plot",
    "render_table",
    "format_seconds",
    "format_bytes",
    "render_timeline",
]
