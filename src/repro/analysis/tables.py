"""Aligned text tables for benchmark output.

The benches print the same rows/series the paper reports; this keeps
the rendering consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_seconds", "format_bytes"]


def format_seconds(value: float) -> str:
    """Human scale: µs/ms/s/min/h as appropriate."""
    a = abs(value)
    if a < 1e-3:
        return f"{value * 1e6:.1f}µs"
    if a < 1.0:
        return f"{value * 1e3:.1f}ms"
    if a < 120.0:
        return f"{value:.2f}s"
    if a < 7200.0:
        return f"{value / 60.0:.1f}min"
    return f"{value / 3600.0:.2f}h"


def format_bytes(value: float) -> str:
    """Human scale with binary prefixes."""
    a = abs(value)
    for unit, div in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if a >= div:
            return f"{value / div:.2f}{unit}"
    return f"{value:.0f}B"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    align: str | None = None,
) -> str:
    """Monospace table.  ``align`` is a string of 'l'/'r' per column
    (default: first column left, rest right)."""
    cols = len(headers)
    if align is None:
        align = "l" + "r" * (cols - 1)
    if len(align) != cols:
        raise ValueError(f"align {align!r} does not match {cols} columns")
    str_rows = [[str(c) for c in row] for row in rows]
    for r in str_rows:
        if len(r) != cols:
            raise ValueError(f"row {r!r} does not match {cols} columns")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(cols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if align[i] == "l" else cell.rjust(widths[i]))
        return "  ".join(parts)

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt_row(list(headers)))
    out.append(sep)
    out.extend(fmt_row(r) for r in str_rows)
    return "\n".join(out)
