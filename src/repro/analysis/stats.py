"""Summary statistics for experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "bootstrap_ci", "relative_error"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    @property
    def std_error(self) -> float:
        return self.std / math.sqrt(self.n) if self.n > 1 else float("inf")

    def ci95(self) -> tuple[float, float]:
        half = 1.96 * self.std_error
        return (self.mean - half, self.mean + half)


def summarize(samples) -> Summary:
    """Summary statistics of a 1-D sample."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def bootstrap_ci(
    samples,
    rng: np.random.Generator,
    stat=np.mean,
    n_boot: int = 2000,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile bootstrap CI for an arbitrary statistic."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    stats = np.array([stat(arr[row]) for row in idx])
    lo, hi = np.quantile(stats, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def relative_error(measured: float, reference: float) -> float:
    """|measured − reference| / |reference| (inf when reference is 0)."""
    if reference == 0:
        return math.inf if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)
