"""Checkpoint-protected request serving over the simulated cluster.

The subsystem that models what the cluster's disruptions *cost a user*:
VMs host request-serving replicas fed by seeded open-loop arrival
streams (:mod:`repro.serving.arrivals`), served under exact
processor-sharing via lazy virtual-time servers
(:mod:`repro.serving.engine`), driven through real checkpoint pause
windows, crashes, and recoveries by :mod:`repro.serving.runtime`, with
request cloning and an SLA-driven checkpoint controller
(:mod:`repro.serving.controller`) as the two tail-latency levers the
paired study (:mod:`repro.serving.study`) compares.
"""

from .arrivals import ArrivalChunk, ArrivalConfig, OpenLoopArrivals
from .controller import SLAController
from .engine import PSServer, ServingEngine
from .runtime import ServingRuntime, build_servers
from .study import (
    DEFAULT_POLICIES,
    ServingLoad,
    ServingPolicy,
    ServingStudyOutcome,
    policies_named,
    run_serving_cell,
    run_serving_study,
    serving_sweep,
)

__all__ = [
    "ArrivalChunk",
    "ArrivalConfig",
    "OpenLoopArrivals",
    "PSServer",
    "ServingEngine",
    "ServingRuntime",
    "build_servers",
    "SLAController",
    "ServingLoad",
    "ServingPolicy",
    "ServingStudyOutcome",
    "DEFAULT_POLICIES",
    "policies_named",
    "run_serving_cell",
    "run_serving_study",
    "serving_sweep",
]
