"""BENCH-SERVING — throughput and bit-exactness of the serving path.

Two legs, mirroring what the ISSUE gates:

* **arrivals** — generate and digest a >= 1.2M-request open-loop stream
  twice, chunked (64Ki batches) and monolithic (one draw).  The digests
  must be bit-identical (hard gate: chunk boundaries are a pure batch
  size knob), and the chunked generation rate is recorded so a
  vectorization regression shows up in history (warn-only: absolute
  req/s is hardware-dependent).
* **serve** — one fixed checkpoint-protected serving cell.  Counts,
  exact latency quantiles, and the completion digest are all
  deterministic functions of the seed, so they gate *hard* against the
  baseline; the serve rate (requests simulated per wall second) warns.

:func:`generate_serving_bench` produces the JSON-able result;
:func:`compare_serving_baseline` diffs it against a pinned
``BENCH_serving.json`` and returns ``(failures, warnings)`` in the same
shape :func:`repro.perf.compare_to_baseline` uses for the scale bench.
"""

from __future__ import annotations

import time

from ..sim.rng import RngRegistry
from .arrivals import ArrivalConfig, OpenLoopArrivals, stream_digest
from .study import ServingLoad, ServingPolicy, run_serving_cell

__all__ = ["generate_serving_bench", "compare_serving_baseline"]

#: Arrival-leg stream size — the ISSUE floor is one million per run.
ARRIVAL_REQUESTS = 1_200_000
ARRIVAL_RATE = 1_000.0
ARRIVAL_CHUNK = 65_536

#: Serve-leg cell: fixed forever — the baseline pins its exact output.
SERVE_POLICY = ServingPolicy("checkpoint", checkpoint=True)
SERVE_LOAD = ServingLoad(rate=240.0, n_requests=30_000)
SERVE_QUICK_LOAD = ServingLoad(rate=240.0, n_requests=8_000)
SERVE_SEED = 0

#: Result keys that must match the baseline bit-for-bit.
_HARD_KEYS_ARRIVALS = ("n_requests", "digest")
_HARD_KEYS_SERVE = (
    "n_requests", "offered", "completed", "lost", "lost_unrouted",
    "digest", "p50", "p99",
)


def _arrival_leg(log) -> dict:
    def build(chunk: int) -> OpenLoopArrivals:
        return OpenLoopArrivals(
            ArrivalConfig(
                rate=ARRIVAL_RATE,
                n_requests=ARRIVAL_REQUESTS,
                chunk_requests=chunk,
            ),
            RngRegistry(SERVE_SEED),
        )

    t0 = time.perf_counter()
    chunked = stream_digest(build(ARRIVAL_CHUNK))
    elapsed = time.perf_counter() - t0
    monolithic = stream_digest(build(ARRIVAL_REQUESTS))
    log(f"arrivals: {ARRIVAL_REQUESTS:,} requests, "
        f"{ARRIVAL_REQUESTS / elapsed:,.0f} req/s chunked, "
        f"monolithic match: {chunked == monolithic}")
    return {
        "n_requests": ARRIVAL_REQUESTS,
        "chunk_requests": ARRIVAL_CHUNK,
        "digest": chunked,
        "monolithic_digest": monolithic,
        "chunk_invariant": chunked == monolithic,
        "requests_per_sec": round(ARRIVAL_REQUESTS / elapsed, 1),
    }


def _serve_leg(load: ServingLoad, log) -> dict:
    t0 = time.perf_counter()
    report = run_serving_cell(SERVE_POLICY, load, SERVE_SEED)
    elapsed = time.perf_counter() - t0
    log(f"serve: {load.n_requests:,} requests in {elapsed:.2f}s "
        f"({load.n_requests / elapsed:,.0f} req/s), "
        f"p99 {report['latency']['p99'] * 1e3:.1f} ms")
    return {
        "n_requests": load.n_requests,
        "offered": report["offered"],
        "completed": report["completed"],
        "lost": report["lost"],
        "lost_unrouted": report["lost_unrouted"],
        "digest": report["digest"],
        "p50": report["latency"]["p50"],
        "p99": report["latency"]["p99"],
        "pauses": report["pauses"],
        "requests_per_sec": round(load.n_requests / elapsed, 1),
    }


def generate_serving_bench(quick: bool = False, log=None) -> dict:
    """Run the bench; ``quick`` skips only the *full-size* serve cell.

    The arrival leg (full 1.2M-request contract) and the quick serve
    cell always run, so a ``--quick`` CI pass still hard-gates both
    digests against the baseline.
    """
    log = log or (lambda msg: None)
    out = {
        "quick": bool(quick),
        "arrivals": _arrival_leg(log),
        "serve_quick": _serve_leg(SERVE_QUICK_LOAD, log),
    }
    if not quick:
        out["serve"] = _serve_leg(SERVE_LOAD, log)
    return out


def compare_serving_baseline(
    result: dict, baseline: dict, tolerance: float = 0.3
) -> tuple[list[str], list[str]]:
    """Diff a fresh result against the pinned baseline.

    Hard failures: any bit-exact key (digests, counts, exact quantiles)
    differing, or chunked != monolithic within the fresh run itself.
    Warnings: throughput below ``(1 - tolerance) ×`` baseline.
    """
    failures: list[str] = []
    warnings: list[str] = []
    if not result["arrivals"]["chunk_invariant"]:
        failures.append(
            "arrival stream is NOT chunk-invariant: chunked digest "
            f"{result['arrivals']['digest']} != monolithic "
            f"{result['arrivals']['monolithic_digest']}"
        )
    for leg, hard_keys in (
        ("arrivals", _HARD_KEYS_ARRIVALS),
        ("serve_quick", _HARD_KEYS_SERVE),
        ("serve", _HARD_KEYS_SERVE),
    ):
        if leg == "serve" and ("serve" not in result or "serve" not in baseline):
            continue  # quick run and/or quick baseline: leg absent
        fresh, pinned = result[leg], baseline.get(leg, {})
        for key in hard_keys:
            if key not in pinned:
                failures.append(f"{leg}: baseline is missing {key!r}")
            elif fresh[key] != pinned[key]:
                failures.append(
                    f"{leg}: {key} changed — baseline {pinned[key]!r}, "
                    f"run {fresh[key]!r}"
                )
        floor = pinned.get("requests_per_sec")
        if floor and fresh["requests_per_sec"] < floor * (1.0 - tolerance):
            warnings.append(
                f"{leg}: {fresh['requests_per_sec']:,.0f} req/s is "
                f"{(1 - fresh['requests_per_sec'] / floor) * 100:.0f}% "
                f"below baseline {floor:,.0f} (hardware-dependent)"
            )
    return failures, warnings
