"""Drive the serving engine through simulated cluster time.

:class:`ServingRuntime` is the bridge between the offline
:class:`~repro.serving.engine.ServingEngine` sweep and the discrete
event simulator.  It schedules exactly one wake per arrival chunk — a
LATE-priority event at the chunk's last arrival time, guaranteeing
every same-timestamp disruption handler has already appended its status
change before the sweep runs — then sweeps the whole window at once and
feeds the drained completions into telemetry in batch.

The runtime operates in two modes:

* **standalone** — it owns the checkpoint cadence itself: each cycle
  brackets :meth:`DisklessCheckpointer.run_cycle` with engine stalls
  (barrier start to barrier lift, surfaced by the cycle's
  ``pause_done`` event), and it drives node repair + rollback recovery
  after injected crashes.  This is what ``repro serving run|study``
  uses.
* **sidecar** — an existing :class:`~repro.workloads.app.CheckpointedJob`
  owns checkpointing and recovery; the runtime taps the checkpoint
  coordinator's tracer to mirror ``coordinated.pause`` /
  ``coordinated.resume`` into stall windows and watches the cluster for
  replica recovery.  This is what ``PairedJobStudy(serving=...)`` uses.

Disruption accounting: every (node down → serving restored) interval is
a *degraded window* attributed to the parity groups hosted on that
node, exported per group as ``repro_requests_degraded_total{group=}``
and summed into the report — the serving-side counterpart of the
healer's per-group ``repro_degraded_window_seconds``.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from ..sim import LATE, NULL_TRACER, Tracer
from ..telemetry import probe_of
from .arrivals import OpenLoopArrivals
from .controller import SLAController
from .engine import PSServer, ServingEngine

__all__ = ["ServingRuntime", "build_servers"]

_INF = math.inf

#: Latency quantiles the serving histogram tracks (p50/p95/p99/p999).
LATENCY_QUANTILES = (0.5, 0.95, 0.99, 0.999)

_QUANTILE_KEYS = {0.5: "p50", 0.95: "p95", 0.99: "p99", 0.999: "p999"}


def build_servers(cluster) -> list[PSServer]:
    """One PS replica per cluster VM, in vm-id order."""
    vms = sorted(cluster.all_vms, key=lambda v: v.vm_id)
    if not vms:
        raise ValueError("cluster hosts no VMs to serve from")
    return [
        PSServer(
            sid, vm.vm_id,
            vm.node_id if vm.node_id is not None else -1,
        )
        for sid, vm in enumerate(vms)
    ]


class _CoordinatorTap(Tracer):
    """Forwarding tracer mirroring barrier pause/resume into stalls."""

    def __init__(self, inner: Tracer, runtime: "ServingRuntime"):
        super().__init__(enabled=True)
        self._inner = inner
        self._runtime = runtime

    def emit(self, time: float, kind: str, **data) -> None:
        if kind == "coordinated.pause":
            self._runtime._on_pause(time)
        elif kind == "coordinated.resume":
            self._runtime._on_resume(time)
        self._inner.emit(time, kind, **data)


class ServingRuntime:
    """Serve an open-loop request stream from the cluster's VMs."""

    def __init__(
        self,
        scenario,
        arrivals: OpenLoopArrivals,
        *,
        checkpointer=None,
        injector=None,
        job=None,
        repair_time: float = 30.0,
        clone: int = 1,
        interval: float = 120.0,
        controller: SLAController | None = None,
        tracer: Tracer = NULL_TRACER,
        policy: str = "serving",
        drain_tick: float = 5.0,
    ):
        self.sim = scenario.sim
        self.cluster = scenario.cluster
        self.arrivals = arrivals
        self.ck = checkpointer
        self.job = job  # sidecar mode when set: the job owns cadence
        self.repair_time = float(repair_time)
        #: checkpoint cadence knob — read every cycle, so the SLA
        #: controller can turn it live (standalone mode)
        self.interval = float(interval)
        self.controller = controller
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.policy = policy
        self.drain_tick = float(drain_tick)

        self.servers = build_servers(self.cluster)
        self.engine = ServingEngine(
            self.servers, clone=clone,
            clone_demand=arrivals.clone_sampler() if clone > 1 else None,
        )
        self._sid_by_vm = {s.vm_id: s.sid for s in self.servers}

        # disruption bookkeeping
        self.pauses: list[tuple[float, float]] = []
        self._pause_open: float | None = None
        self.cycles = 0
        self.aborted_cycles = 0
        self.n_failures = 0
        self.n_recoveries = 0
        self.unrecoverable: list[tuple[int, str]] = []
        #: node -> (window start, group labels, downed sids)
        self._open_outages: dict[int, tuple[float, list[str], list[int]]] = {}
        self._shed: set[int] = set()
        #: closed (start, end, labels) windows pending/kept for reporting
        self._closed_outages: list[tuple[float, float, list[str]]] = []
        self.degraded_requests: dict[str, int] = {}

        # results
        self._lat_chunks: list[np.ndarray] = []
        self._digest = hashlib.sha256()
        self._last_lost = 0
        self._done = False
        self.drain_stalled = False
        self._proc = None

        if self.job is not None and self.ck is not None:
            coord = getattr(self.ck, "coordinator", None)
            if coord is not None:
                coord.tracer = _CoordinatorTap(coord.tracer, self)
        if injector is not None:
            injector.subscribe(self._on_failure)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._proc = self.sim.process(self._run())
        return self._proc

    def _late_wake(self, t: float):
        """An event succeeding at ``t`` *after* every same-timestamp
        NORMAL/URGENT callback — the status log is complete by then."""
        ev = self.sim.event()
        self.sim.at(t, ev.succeed, priority=LATE)
        return ev

    def _run(self):
        sim = self.sim
        standalone = self.job is None
        if standalone and self.ck is not None:
            sim.process(self._cadence_loop())
        sim.process(self._drain_loop())
        for chunk in self.arrivals.chunks():
            self.engine.feed(chunk)
            w1 = chunk.end
            if w1 > sim.now:
                yield self._late_wake(w1)
            self.engine.advance_to(sim.now)
            self._drain_window()
        # stream exhausted: chase the remaining in-flight requests
        guard = 0
        while self.engine.outstanding > 0 and guard < 100_000:
            guard += 1
            t = self.engine.next_event_time()
            if t == _INF:
                # in-flight work frozen behind a stall or an outage;
                # wait for the cadence/repair machinery to move
                yield sim.timeout(self.drain_tick)
            elif t > sim.now:
                yield self._late_wake(t)
            self.engine.advance_to(sim.now)
            self._drain_window()
        self.drain_stalled = self.engine.outstanding > 0
        self._done = True
        self._close_outages(sim.now)
        self.tracer.emit(
            sim.now, "serving.done",
            offered=self.engine.offered,
            completed=self.engine.completed,
            lost=self.engine.lost + self.engine.lost_unrouted,
        )

    def _drain_loop(self):
        """Fixed-tick drain between chunk boundaries.

        One arrival chunk can span the whole run, and ``_run`` only
        drains when a chunk ends — without this loop the SLA controller
        would see its first latency window after the stream is over.
        Ticks are pure cut points (the engine sweep is bit-identical
        under any cut placement), so this changes *when* completions are
        observed, never what they are.
        """
        sim = self.sim
        while not self._done:
            yield self._late_wake(sim.now + self.drain_tick)
            if self._done:
                break
            self.engine.advance_to(sim.now)
            self._drain_window()

    # ------------------------------------------------------------------
    # checkpoint cadence (standalone mode)
    # ------------------------------------------------------------------
    def _cadence_loop(self):
        sim = self.sim
        while not self._done:
            if self._open_outages:
                # membership gate: no cycles with nodes down/recovering
                yield sim.timeout(min(self.interval, self.drain_tick))
                continue
            try:
                yield from self._one_cycle()
            except Exception:
                self.aborted_cycles += 1
                self._on_resume(sim.now)  # never leave servers frozen
            if self._done:
                break
            yield sim.timeout(self.interval)

    def _one_cycle(self):
        sim = self.sim
        pause_done = sim.event()
        self._on_pause(sim.now)
        proc = sim.process(self.ck.run_cycle(pause_done=pause_done))
        # resume at whichever lands first: barrier lift, or the cycle
        # dying before it (never leave the fleet frozen behind a stall)
        lifted = sim.event()

        def _first(_ev):
            if not lifted.triggered:
                lifted.succeed()

        pause_done.subscribe(_first)
        proc.subscribe(_first)
        yield lifted
        self._on_resume(sim.now)
        if not proc.triggered:
            yield proc  # raises into the cadence loop if the cycle died
        elif proc.ok is False:
            raise proc.value
        self.cycles += 1

    def _on_pause(self, t: float) -> None:
        if self._pause_open is None:
            self.engine.stall_begin(t)
            self._pause_open = t

    def _on_resume(self, t: float) -> None:
        if self._pause_open is not None:
            self.engine.stall_end(t)
            self.pauses.append((self._pause_open, t))
            self._pause_open = None

    # ------------------------------------------------------------------
    # failures and recovery
    # ------------------------------------------------------------------
    def _groups_on_node(self, node_id: int) -> list[str]:
        layout = getattr(self.ck, "layout", None)
        if layout is None:
            return ["none"]
        groups: set[int] = set()
        for server in self.servers:
            if server.node_id == node_id:
                try:
                    groups.add(layout.group_of(server.vm_id).group_id)
                except (KeyError, AttributeError):
                    pass
        return [str(g) for g in sorted(groups)] or ["none"]

    def _on_failure(self, event) -> None:
        node_id = event.node_id
        now = self.sim.now
        # track shed replicas at the runtime level — engine server state
        # lags behind sim time until the next sweep and must not be read
        # (or written) here, or chunk invariance breaks
        sids = [
            s.sid for s in self.servers
            if s.node_id == node_id and s.sid not in self._shed
        ]
        labels = self._groups_on_node(node_id)
        node = self.cluster.node(node_id)
        standalone = self.job is None
        if standalone:
            if not node.alive:
                return
            self.cluster.kill_node(node_id)
        elif not sids:
            return  # repeat crash of a node we already shed
        self.engine.set_down(now, sids)
        self._shed.update(sids)
        self.n_failures += 1
        self._open_outages[node_id] = (now, labels, sids)
        self.tracer.emit(
            now, "serving.node_down", node=node_id, shed=len(sids)
        )
        if standalone:
            self.sim.schedule(self.repair_time, self._spawn_recovery, node_id)
        else:
            self.sim.process(self._watch_recovery(node_id))

    def _spawn_recovery(self, node_id: int) -> None:
        self.sim.process(self._recover_proc(node_id))

    def _recover_proc(self, node_id: int):
        """Standalone repair + rollback recovery for one crashed node."""
        self.cluster.repair_node(node_id)
        _, _, sids = self._open_outages.get(node_id, (0.0, [], []))
        if self.ck is not None and self.ck.committed_epoch >= 0:
            try:
                yield from self.ck.recover(node_id)
            except RuntimeError as exc:
                self.unrecoverable.append((node_id, str(exc)))
                self.tracer.emit(
                    self.sim.now, "serving.unrecoverable", node=node_id
                )
                return  # replicas stay dark; the outage never closes
            self.n_recoveries += 1
        else:
            # nothing committed to roll back to: cold-start the replicas
            # empty on the freshly repaired node
            for sid in sids:
                vm = self.cluster.vm(self.servers[sid].vm_id)
                if vm.node_id is None:
                    self.cluster.place_failed_vm(vm.vm_id, node_id)
                    vm.revive()
        self._restore_replicas(node_id)

    def _watch_recovery(self, node_id: int):
        """Sidecar mode: the job recovers; we watch for replicas to
        come back (possibly on a different node, per placement)."""
        _, _, sids = self._open_outages.get(node_id, (0.0, [], []))
        while True:
            yield self.sim.timeout(self.drain_tick)
            if self._done:
                return
            live = [
                sid for sid in sids
                if self.cluster.vm(self.servers[sid].vm_id).node_id is not None
            ]
            if len(live) == len(sids):
                self._restore_replicas(node_id)
                return

    def _restore_replicas(self, node_id: int) -> None:
        now = self.sim.now
        start, labels, sids = self._open_outages.pop(
            node_id, (now, [], [])
        )
        up = []
        for sid in sids:
            vm = self.cluster.vm(self.servers[sid].vm_id)
            if vm.node_id is None:
                continue  # still homeless — leave it dark
            # recovery may have re-placed the VM; follow it
            self.servers[sid].node_id = vm.node_id
            up.append(sid)
        if up:
            self.engine.set_up(now, up)
            self._shed.difference_update(up)
        self._closed_outages.append((start, now, labels))
        self.tracer.emit(
            now, "serving.node_restored", node=node_id,
            restored=len(up), window=now - start,
        )

    def _close_outages(self, now: float) -> None:
        for node_id in list(self._open_outages):
            start, labels, _ = self._open_outages.pop(node_id)
            self._closed_outages.append((start, now, labels))

    # ------------------------------------------------------------------
    # telemetry drain
    # ------------------------------------------------------------------
    def _drain_window(self) -> None:
        times, lat, rid, _sid = self.engine.take_completions()
        if lat.size:
            self._lat_chunks.append(lat)
            # interleave (rid, latency) per record so the digest byte
            # stream is invariant to how completions split across drains
            rec = np.empty(2 * lat.size, dtype=np.float64)
            rec[0::2] = rid
            rec[1::2] = lat
            self._digest.update(rec.tobytes())
            self.probe.observe_batch(
                "repro_request_latency_seconds", lat,
                help="Per-request serving latency",
                quantiles=LATENCY_QUANTILES,
                policy=self.policy,
            )
            self.probe.count(
                "repro_requests_total", float(lat.size),
                help="Requests completed", policy=self.policy,
            )
            self._attribute_degraded(times)
        lost = self.engine.lost + self.engine.lost_unrouted
        if lost > self._last_lost:
            self.probe.count(
                "repro_requests_lost_total", float(lost - self._last_lost),
                help="Requests lost to crashes or total outage",
                policy=self.policy,
            )
            self._last_lost = lost
        self.probe.gauge_set(
            "repro_serving_inflight", float(self.engine.outstanding),
            help="Requests in flight across all replicas",
        )
        if self.controller is not None and lat.size:
            self.controller.update(self.sim.now, lat)

    def _attribute_degraded(self, times: np.ndarray) -> None:
        """Count drained completions that landed inside degraded
        windows, per parity-group label (completion times are sorted)."""
        windows = list(self._closed_outages)
        windows += [
            (start, _INF, labels)
            for start, labels, _ in self._open_outages.values()
        ]
        if not windows:
            return
        for start, end, labels in windows:
            lo = int(np.searchsorted(times, start, side="left"))
            hi = int(np.searchsorted(times, end, side="right"))
            if hi <= lo:
                continue
            for label in labels:
                self.degraded_requests[label] = (
                    self.degraded_requests.get(label, 0) + (hi - lo)
                )
                self.probe.count(
                    "repro_requests_degraded_total", float(hi - lo),
                    help="Requests served inside a degraded window",
                    group=label,
                )

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """All recorded per-request latencies, completion-ordered."""
        if not self._lat_chunks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(self._lat_chunks)

    def report(self) -> dict:
        """JSON-able run summary (exact quantiles, not estimates)."""
        lat = self.latencies()
        if lat.size:
            quantiles = {
                _QUANTILE_KEYS[q]: float(np.quantile(lat, q))
                for q in LATENCY_QUANTILES
            }
            latency = {
                "mean": float(lat.mean()),
                "max": float(lat.max()),
                **quantiles,
            }
        else:
            latency = {}
        eng = self.engine
        degraded_seconds: dict[str, float] = {}
        for start, end, labels in self._closed_outages:
            for label in labels:
                degraded_seconds[label] = (
                    degraded_seconds.get(label, 0.0) + (end - start)
                )
        out = {
            "offered": eng.offered,
            "completed": eng.completed,
            "lost": eng.lost,
            "lost_unrouted": eng.lost_unrouted,
            "latency": latency,
            "pauses": len(self.pauses),
            "pause_seconds": float(
                sum(end - start for start, end in self.pauses)
            ),
            "cycles": self.cycles,
            "aborted_cycles": self.aborted_cycles,
            "failures": self.n_failures,
            "recoveries": self.n_recoveries,
            "unrecoverable": len(self.unrecoverable),
            "degraded_seconds": degraded_seconds,
            "degraded_requests": dict(self.degraded_requests),
            "interval_final": self.interval,
            "digest": self._digest.hexdigest(),
            "drained": not self.drain_stalled,
        }
        if self.controller is not None:
            out["sla"] = self.controller.summary()
        return out
