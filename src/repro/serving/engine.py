"""Exact processor-sharing service via lazy virtual-time servers.

Request service is *fluid*: a replica with ``n`` in-flight requests
gives each 1/n of its capacity.  Scheduling one simulator event per
arrival/departure would be ruinous at millions of requests, so each
:class:`PSServer` instead keeps the classic GPS *virtual time* V with a
lazy anchor ``(t, V, n)``: V advances only when a real event — arrival,
departure, stall, crash — touches the server, by ``(now - t) / n``.  A
request with demand ``s`` arriving at virtual time ``V_a`` departs when
V reaches ``V_a + s``; with the membership frozen that happens at real
time ``t + (f_min - V) * n``.  At a departure V is assigned the finish
value *directly* (no incremental drift), so the whole sweep is a
sequence of IEEE-754 operations fully determined by the event sequence.

The :class:`ServingEngine` merges three ordered feeds and sweeps them
offline in ``advance_to(T)``:

* **status changes** (crash / recover / stall begin / stall end),
  appended by the runtime at simulation time and kept sorted by
  ``(time, rank, server)``;
* **departures**, a global heap of per-server candidates stamped with
  the server's mutation version (stale candidates are skipped);
* **arrivals**, numpy chunks consumed through an index — no per-request
  Python objects ever enter the simulator heap.

Tie-break at equal times is fixed: status < departure < arrival, then
server id.  Cut points — the ``advance_to`` boundaries at chunk ends —
touch no float state, so sweeping the same inputs under any chunking is
bit-identical.  That invariance is the contract the golden serving
digests pin.

Request **cloning** (clone-to-d) dispatches one request to ``d``
distinct live replicas; the first completion wins and cancels the
siblings (first-completion-wins, cancel-on-complete), and a cloned
request is lost only when *every* replica holding it crashes.  When a
``clone_demand`` sampler is supplied, each sibling draws an i.i.d.
demand (server-side variability — the standard redundancy model, under
which cloning trims the tail); without one siblings share the primary
demand and cloning only buys crash protection, at d× offered work.
"""

from __future__ import annotations

import math
from bisect import insort
from heapq import heappop, heappush

import numpy as np

from .arrivals import ArrivalChunk

__all__ = ["PSServer", "ServingEngine"]

_INF = math.inf

#: Status ranks — applied before departures/arrivals at equal times, in
#: this order: a recovering node comes up before a new stall begins, and
#: crash handling precedes everything.
_DOWN, _UP, _STALL_END, _STALL_BEGIN = 0, 1, 2, 3


class PSServer:
    """One processor-sharing replica with a lazy virtual-time anchor."""

    __slots__ = (
        "sid", "vm_id", "node_id", "t", "V", "n",
        "jobs", "heap", "stalled", "down", "version",
    )

    def __init__(self, sid: int, vm_id: int = -1, node_id: int = -1):
        self.sid = sid
        self.vm_id = vm_id
        self.node_id = node_id
        self.t = 0.0  # anchor real time
        self.V = 0.0  # virtual time at the anchor
        self.n = 0  # in-flight requests
        #: rid -> (virtual finish, arrival time)
        self.jobs: dict[int, tuple[float, float]] = {}
        #: (virtual finish, rid) min-heap; entries whose rid left
        #: ``jobs`` are stale and skipped lazily
        self.heap: list[tuple[float, int]] = []
        self.stalled = False
        self.down = False
        #: bumped on every mutation; invalidates departure candidates
        self.version = 0

    def advance(self, t: float) -> None:
        """Move the anchor to real time ``t``, advancing V if serving."""
        if t > self.t:
            if self.n and not self.stalled and not self.down:
                self.V += (t - self.t) / self.n
            self.t = t

    def next_finish(self) -> tuple[float, int]:
        """(virtual finish, rid) of the head request; ``(inf, -1)`` idle."""
        heap, jobs = self.heap, self.jobs
        while heap and heap[0][1] not in jobs:
            heappop(heap)
        if not heap:
            return _INF, -1
        return heap[0]

    def departure_time(self) -> float:
        """Real time the head request finishes under current membership."""
        if self.down or self.stalled or not self.n:
            return _INF
        f, _ = self.next_finish()
        if f == _INF:
            return _INF
        dt = (f - self.V) * self.n
        return self.t + (dt if dt > 0.0 else 0.0)


class ServingEngine:
    """Offline sweep over servers, arrivals, departures, and statuses."""

    def __init__(
        self,
        servers: list[PSServer],
        clone: int = 1,
        clone_demand=None,
    ):
        if not servers:
            raise ValueError("need at least one server")
        if clone < 1:
            raise ValueError(f"clone must be >= 1, got {clone}")
        self.servers = list(servers)
        self.clone = min(int(clone), len(self.servers))
        #: optional () -> float sampler for sibling demands
        self._clone_demand = clone_demand
        #: sweep frontier — every event with time <= ``time`` is done
        self.time = 0.0
        # status feed, kept sorted by (time, rank, sid)
        self._status: list[tuple[float, int, int]] = []
        self._status_ptr = 0
        # arrival feed: queued chunks plus a read position
        self._chunks: list[ArrivalChunk] = []
        self._chunk_i = 0
        self._arr_i = 0
        # departure candidates: (time, sid, server version)
        self._cand: list[tuple[float, int, int]] = []
        # cloned requests still racing: rid -> set of sids
        self._racing: dict[int, set[int]] = {}
        # completion buffers, drained by the runtime
        self._done_t: list[float] = []
        self._done_lat: list[float] = []
        self._done_rid: list[int] = []
        self._done_sid: list[int] = []
        # totals
        self.offered = 0
        self.completed = 0
        self.lost = 0  # in-flight requests destroyed by crashes
        self.lost_unrouted = 0  # arrivals that found no live replica

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def feed(self, chunk: ArrivalChunk) -> None:
        """Queue one arrival chunk (consumed by :meth:`advance_to`)."""
        if chunk.n:
            self._chunks.append(chunk)

    def _push_status(self, t: float, rank: int, sids: list[int]) -> None:
        if t < self.time:
            raise ValueError(
                f"status at {t} behind sweep frontier {self.time}"
            )
        status = self._status
        for sid in sorted(sids):
            entry = (t, rank, sid)
            if status and entry < status[-1]:
                # same-timestamp entries may arrive out of rank order;
                # keep the unswept tail sorted
                insort(status, entry, lo=self._status_ptr)
            else:
                status.append(entry)

    def stall_begin(self, t: float, sids: list[int] | None = None) -> None:
        """Freeze service (checkpoint pause barrier) on ``sids``.

        Defaults to every server: the sweep drops the stall on replicas
        that are down *as of time t*, which callers pushing statuses
        ahead of the sweep cannot know yet."""
        self._push_status(
            t, _STALL_BEGIN,
            [s.sid for s in self.servers] if sids is None else sids,
        )

    def stall_end(self, t: float, sids: list[int] | None = None) -> None:
        """Lift the pause; non-stalled servers ignore it."""
        self._push_status(
            t, _STALL_END,
            [s.sid for s in self.servers] if sids is None else sids,
        )

    def set_down(self, t: float, sids: list[int]) -> None:
        """Crash replicas: in-flight requests are shed (lost unless a
        clone sibling survives elsewhere)."""
        self._push_status(t, _DOWN, sids)

    def set_up(self, t: float, sids: list[int]) -> None:
        """Bring recovered replicas back into the routing set, empty."""
        self._push_status(t, _UP, sids)

    # ------------------------------------------------------------------
    # sweep
    # ------------------------------------------------------------------
    def advance_to(self, T: float) -> None:
        """Process every event with time <= ``T`` in deterministic order."""
        if T < self.time:
            raise ValueError(f"cannot sweep backwards: {T} < {self.time}")
        status = self._status
        while True:
            t_status = (
                status[self._status_ptr][0]
                if self._status_ptr < len(status) else _INF
            )
            t_dep, dep_sid = self._peek_departure()
            t_arr = self._peek_arrival()
            t = min(t_status, t_dep, t_arr)
            if t > T or t == _INF:
                break
            if t_status <= t_dep and t_status <= t_arr:
                entry = status[self._status_ptr]
                self._status_ptr += 1
                self._apply_status(entry)
            elif t_dep <= t_arr:
                heappop(self._cand)
                self._depart(t_dep, dep_sid)
            else:
                self._arrive()
        self.time = T

    def next_event_time(self) -> float:
        """Earliest pending event; ``inf`` when only stalled/blocked."""
        t_status = (
            self._status[self._status_ptr][0]
            if self._status_ptr < len(self._status) else _INF
        )
        return min(t_status, self._peek_departure()[0], self._peek_arrival())

    def _peek_departure(self) -> tuple[float, int]:
        cand, servers = self._cand, self.servers
        while cand:
            t, sid, version = cand[0]
            if servers[sid].version == version:
                return t, sid
            heappop(cand)
        return _INF, -1

    def _peek_arrival(self) -> float:
        while self._chunk_i < len(self._chunks):
            chunk = self._chunks[self._chunk_i]
            if self._arr_i < chunk.n:
                return float(chunk.times[self._arr_i])
            self._chunk_i += 1
            self._arr_i = 0
        if self._chunk_i:
            # free fully consumed chunks
            del self._chunks[: self._chunk_i]
            self._chunk_i = 0
        return _INF

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _bump(self, server: PSServer) -> None:
        server.version += 1
        td = server.departure_time()
        if td != _INF:
            heappush(self._cand, (td, server.sid, server.version))

    def _route(self, rid: int) -> list[int]:
        """First ``clone`` live replicas probing forward from rid % R."""
        servers = self.servers
        n = len(servers)
        base = rid % n
        out: list[int] = []
        for k in range(n):
            sid = (base + k) % n
            if not servers[sid].down:
                out.append(sid)
                if len(out) == self.clone:
                    break
        return out

    def _arrive(self) -> None:
        chunk = self._chunks[self._chunk_i]
        i = self._arr_i
        self._arr_i = i + 1
        t = float(chunk.times[i])
        s = float(chunk.service[i])
        rid = chunk.start_id + i
        self.offered += 1
        targets = self._route(rid)
        if not targets:
            self.lost_unrouted += 1
            return
        if len(targets) > 1:
            self._racing[rid] = set(targets)
        for k, sid in enumerate(targets):
            demand = s
            if k and self._clone_demand is not None:
                demand = self._clone_demand()
            server = self.servers[sid]
            server.advance(t)
            f = server.V + demand
            server.jobs[rid] = (f, t)
            heappush(server.heap, (f, rid))
            server.n += 1
            self._bump(server)

    def _depart(self, t: float, sid: int) -> None:
        server = self.servers[sid]
        f, rid = server.next_finish()
        server.t = t
        server.V = f  # land exactly on the finish line — no float drift
        heappop(server.heap)
        _, arrived = server.jobs.pop(rid)
        server.n -= 1
        self._bump(server)
        racing = self._racing.pop(rid, None)
        if racing is not None:
            for other in sorted(racing):
                if other == sid:
                    continue
                sib = self.servers[other]
                if rid not in sib.jobs:
                    continue
                sib.advance(t)  # the clone consumed capacity until now
                del sib.jobs[rid]
                sib.n -= 1
                self._bump(sib)
        self.completed += 1
        self._done_t.append(t)
        self._done_lat.append(t - arrived)
        self._done_rid.append(rid)
        self._done_sid.append(sid)

    def _apply_status(self, entry: tuple[float, int, int]) -> None:
        t, rank, sid = entry
        server = self.servers[sid]
        if rank == _DOWN:
            if server.down:
                return
            server.advance(t)
            server.down = True
            server.stalled = False
            for rid in sorted(server.jobs):
                racing = self._racing.get(rid)
                if racing is not None:
                    racing.discard(sid)
                    if racing:
                        continue  # a sibling still carries it
                    del self._racing[rid]
                self.lost += 1
            server.jobs.clear()
            server.heap.clear()
            server.n = 0
            self._bump(server)
        elif rank == _UP:
            if not server.down:
                return
            server.t = t
            server.down = False
            self._bump(server)
        elif rank == _STALL_END:
            if server.down or not server.stalled:
                return
            server.t = t  # V stayed frozen across the whole stall
            server.stalled = False
            self._bump(server)
        else:  # _STALL_BEGIN
            if server.down or server.stalled:
                return
            server.advance(t)
            server.stalled = True
            self._bump(server)

    # ------------------------------------------------------------------
    # drains and accounting
    # ------------------------------------------------------------------
    def take_completions(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Drain ``(times, latencies, rids, sids)`` since the last drain.

        Completion order is sweep order — time-ordered and
        chunking-invariant — so feeding these straight into sequential
        estimators (P² quantiles) keeps them bit-stable too.
        """
        out = (
            np.asarray(self._done_t, dtype=np.float64),
            np.asarray(self._done_lat, dtype=np.float64),
            np.asarray(self._done_rid, dtype=np.int64),
            np.asarray(self._done_sid, dtype=np.int64),
        )
        self._done_t, self._done_lat = [], []
        self._done_rid, self._done_sid = [], []
        return out

    @property
    def outstanding(self) -> int:
        """Requests offered but not yet completed or lost."""
        return self.offered - self.completed - self.lost - self.lost_unrouted

    @property
    def pending_arrivals(self) -> int:
        total = sum(c.n for c in self._chunks[self._chunk_i:])
        return total - (self._arr_i if self._chunk_i < len(self._chunks) else 0)
