"""Paired serving studies: what does each protection policy cost a user?

One *cell* = (policy, trace seed): a cluster of PS replicas serving one
seeded open-loop arrival trace under one protection policy.  All
policies at the same trace seed share identical arrival, service, and
failure traces (common random numbers), so cross-policy latency
differences are pure protocol cost — the same CRN discipline
:class:`~repro.experiments.PairedJobStudy` applies to batch jobs.

The default policy set is the ISSUE's comparison square:

* ``baseline`` — no protection: crashes shed in-flight requests and
  lose everything not yet served (replicas cold-start empty).
* ``checkpoint`` — DVDC diskless checkpointing at a fixed interval:
  pause barriers periodically freeze every replica (tail inflation),
  crashes recover by rollback.
* ``checkpoint_sla`` — same, plus the SLA controller steering the
  interval against a p99 target.
* ``clone2`` — request cloning to 2 replicas, first-completion-wins:
  the PS-redundancy alternative to checkpointing for *serving* state.

Cells run serially, or as ``serving_cell`` campaign tasks (parallel,
resumable, bit-identical across ``--jobs`` — pinned by the golden
determinism suite).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..analysis.tables import render_table
from ..checkpoint.strategies import IncrementalCapture
from ..core.architectures import dvdc
from ..failures.distributions import Exponential
from ..failures.injector import FailureInjector, FailureSchedule
from ..sim import NULL_TRACER, Tracer
from ..workloads.generators import scaled_scenario
from .arrivals import ArrivalConfig, OpenLoopArrivals
from .controller import SLAController
from .runtime import ServingRuntime

__all__ = [
    "ServingPolicy",
    "ServingLoad",
    "DEFAULT_POLICIES",
    "policies_named",
    "ServingStudyOutcome",
    "run_serving_cell",
    "run_serving_study",
    "serving_sweep",
]


@dataclass(frozen=True)
class ServingPolicy:
    """One protection configuration to compare."""

    name: str
    checkpoint: bool = False
    clone: int = 1
    sla: bool = False
    interval: float = 5.0

    def __post_init__(self) -> None:
        if self.clone < 1:
            raise ValueError(f"clone must be >= 1, got {self.clone}")
        if self.sla and not self.checkpoint:
            raise ValueError("sla control needs checkpoint=True")
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")


#: The comparison square.  Checkpoint policies start at an aggressive
#: 1 s interval (tight RPO): fixed-interval pays for it in p99, the SLA
#: variant starts identically but relaxes the cadence when p99 breaches
#: the SLO — the delta between the two rows is the controller's win.
DEFAULT_POLICIES: tuple[ServingPolicy, ...] = (
    ServingPolicy("baseline"),
    ServingPolicy("checkpoint", checkpoint=True, interval=1.0),
    ServingPolicy("checkpoint_sla", checkpoint=True, sla=True, interval=1.0),
    ServingPolicy("clone2", clone=2),
)

_POLICY_BY_NAME = {p.name: p for p in DEFAULT_POLICIES}


def policies_named(names: list[str]) -> list[ServingPolicy]:
    """Resolve policy names against the default set."""
    out = []
    for name in names:
        if name not in _POLICY_BY_NAME:
            raise ValueError(
                f"unknown policy {name!r}; pick from "
                f"{sorted(_POLICY_BY_NAME)}"
            )
        out.append(_POLICY_BY_NAME[name])
    return out


@dataclass(frozen=True)
class ServingLoad:
    """Shared cluster + traffic shape of one study (policy-independent).

    Defaults put ~60% utilization on 8 replicas with ~40 ms pause
    windows per checkpoint cycle — enough headroom that the system is
    stable, and enough load that pause windows show up in p99.
    """

    rate: float = 240.0
    n_requests: int = 60_000
    service_mean: float = 0.02
    service_dist: str = "exponential"
    chunk_requests: int = 16_384
    n_nodes: int = 4
    vms_per_node: int = 2
    #: serving VMs are small (128 MiB): checkpoint cycles then complete
    #: in O(100ms)-seconds, so a per-seconds cadence is sustainable
    vm_memory: float = float(128 << 20)
    node_mtbf: float = 0.0  # 0 = no crash injection
    repair_time: float = 20.0
    slo_p99: float = 0.25
    group_size: int | None = None

    def arrival_config(self) -> ArrivalConfig:
        return ArrivalConfig(
            rate=self.rate,
            n_requests=self.n_requests,
            service_mean=self.service_mean,
            service_dist=self.service_dist,
            chunk_requests=self.chunk_requests,
        )


def run_serving_cell(
    policy: ServingPolicy,
    load: ServingLoad,
    seed: int,
    tracer: Tracer = NULL_TRACER,
) -> dict:
    """Run one (policy, trace seed) cell; returns the JSON-able report.

    The scenario, arrival streams, and failure schedule derive from
    ``seed`` alone, so every policy at the same seed faces the same
    world.
    """
    sc = scaled_scenario(
        load.n_nodes, load.vms_per_node, vm_memory=load.vm_memory,
        seed=seed, functional=True, image_pages=16, page_size=64,
        tracer=tracer,
    )
    arrivals = OpenLoopArrivals(load.arrival_config(), sc.rngs)
    ck = None
    if policy.checkpoint:
        # incremental capture: epoch 0 ships full images (one slow
        # warm-up cycle), every later epoch only the dirty pages — the
        # cadence the SLA controller actually gets to steer
        ck = dvdc(
            sc.cluster, group_size=load.group_size,
            strategy=IncrementalCapture(), tracer=tracer,
        )
    injector = None
    if load.node_mtbf > 0:
        schedule = FailureSchedule.draw(
            sc.rngs.stream("failure-trace"),
            Exponential(1.0 / load.node_mtbf),
            load.n_nodes,
            horizon=load.n_requests / load.rate * 10,
            repair_time=load.repair_time,
        )
        injector = FailureInjector(
            sc.sim, load.n_nodes, schedule=schedule, tracer=tracer
        )
    runtime = ServingRuntime(
        sc, arrivals,
        checkpointer=ck,
        injector=injector,
        repair_time=load.repair_time,
        clone=policy.clone,
        interval=policy.interval,
        tracer=tracer,
        policy=policy.name,
    )
    if policy.sla:
        runtime.controller = SLAController(
            runtime, load.slo_p99,
            min_interval=max(policy.interval / 8.0, 0.5),
            max_interval=policy.interval * 16.0,
            tracer=tracer,
        )
    if injector is not None:
        injector.start()
    runtime.start()
    horizon = load.n_requests / load.rate * 50.0 + 1000.0
    sc.sim.run(until=horizon)
    report = runtime.report()
    report["policy"] = policy.name
    report["trace_seed"] = seed
    return report


@dataclass
class ServingStudyOutcome:
    """All cells of a serving study plus presentation helpers."""

    cells: list[dict]
    load: ServingLoad

    def for_policy(self, name: str) -> list[dict]:
        return [c for c in self.cells if c["policy"] == name]

    def mean_quantile(self, name: str, q: str) -> float:
        vals = [
            c["latency"][q] for c in self.for_policy(name)
            if c.get("latency")
        ]
        return float(np.mean(vals)) if vals else float("nan")

    def summary_table(self) -> str:
        policies: list[str] = []
        for c in self.cells:
            if c["policy"] not in policies:
                policies.append(c["policy"])
        rows = []
        for name in policies:
            cells = self.for_policy(name)
            lost = sum(c["lost"] + c["lost_unrouted"] for c in cells)
            offered = sum(c["offered"] for c in cells)
            pauses = float(np.mean([c["pause_seconds"] for c in cells]))
            rows.append([
                name,
                str(offered),
                f"{self.mean_quantile(name, 'p50') * 1e3:.1f}",
                f"{self.mean_quantile(name, 'p95') * 1e3:.1f}",
                f"{self.mean_quantile(name, 'p99') * 1e3:.1f}",
                f"{self.mean_quantile(name, 'p999') * 1e3:.1f}",
                f"{lost / offered * 100:.2f}%" if offered else "-",
                f"{pauses:.2f}",
            ])
        seeds = len({c["trace_seed"] for c in self.cells})
        return render_table(
            ["policy", "offered", "p50 ms", "p95 ms", "p99 ms",
             "p999 ms", "lost", "pause s"],
            rows,
            title=f"serving study over {seeds} shared arrival+failure "
                  "trace(s)",
        )


def serving_sweep(
    policies: list[ServingPolicy],
    load: ServingLoad,
    seeds: int = 3,
    name: str = "serving",
):
    """The study as a campaign sweep of ``serving_cell`` tasks."""
    from ..campaign.spec import Sweep

    return Sweep(
        name=name,
        kind="serving_cell",
        base={"load": asdict(load)},
        grid={
            "policy": [asdict(p) for p in policies],
            "trace_seed": list(range(seeds)),
        },
        seeded=False,
    )


def run_serving_study(
    policies: list[ServingPolicy] | None = None,
    load: ServingLoad | None = None,
    seeds: int = 3,
    jobs: int = 1,
    store=None,
    resume: bool = True,
) -> tuple[ServingStudyOutcome, "object"]:
    """Execute a paired serving study through the campaign runner.

    Returns ``(ServingStudyOutcome, CampaignResult)``.  ``jobs > 1``
    parallelizes across cells with bit-identical results (each cell is
    a deterministic function of its parameters).
    """
    from ..campaign.presets import _raise_if_all_failed, _runner

    policies = list(policies) if policies else list(DEFAULT_POLICIES)
    load = load or ServingLoad()
    sweep = serving_sweep(policies, load, seeds=seeds)
    result = _runner(jobs, store, resume).run(sweep.expand())
    _raise_if_all_failed(result)
    order = {
        (p.name, s): i
        for i, (p, s) in enumerate(
            (p, s) for p in policies for s in range(seeds)
        )
    }
    cells = sorted(
        result.values("serving_cell"),
        key=lambda c: order.get((c["policy"], c["trace_seed"]), 1 << 30),
    )
    return ServingStudyOutcome(cells=cells, load=load), result
