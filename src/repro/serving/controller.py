"""SLA-driven checkpoint control: trade protection cadence for tail latency.

The controller closes the loop the ISSUE names: it watches per-window
latency quantiles and turns the one knob checkpointing exposes to the
serving path — the checkpoint interval, i.e. how often the coordinated
pause barrier freezes every replica.  When the observed p99 breaches
the SLO it *relaxes* the cadence (longer interval, fewer pause windows,
less tail inflation); when p99 sits comfortably under the SLO it
*tightens* it back (shorter interval, less lost work per crash).  Both
moves are multiplicative and clamped to ``[min_interval,
max_interval]``, the classic AIMD-flavored shape that cannot oscillate
out of bounds.

The target is anything with a mutable ``interval`` attribute read once
per cycle — :class:`~repro.serving.runtime.ServingRuntime` in
standalone mode, :class:`~repro.workloads.app.CheckpointedJob` when the
controller rides sidecar on a paired study.

Window quantiles are computed exactly (``np.quantile`` over that
window's latency array), not from the cumulative P² estimate: control
needs a *responsive* signal, and cumulative estimators stop moving
after enough history.  The P² snapshots remain the cheap always-on
export; the controller sees each window fresh.
"""

from __future__ import annotations

import numpy as np

from ..sim import NULL_TRACER, Tracer
from ..telemetry import probe_of

__all__ = ["SLAController"]


class SLAController:
    """Adapt a checkpoint interval to hold p99 latency under an SLO."""

    def __init__(
        self,
        target,
        slo_p99: float,
        *,
        min_interval: float = 10.0,
        max_interval: float = 3600.0,
        relax: float = 1.6,
        tighten: float = 0.85,
        headroom: float = 0.6,
        quantile: float = 0.99,
        tracer: Tracer = NULL_TRACER,
    ):
        if slo_p99 <= 0:
            raise ValueError(f"slo_p99 must be > 0, got {slo_p99}")
        if not min_interval <= max_interval:
            raise ValueError(
                f"min_interval {min_interval} > max_interval {max_interval}"
            )
        if relax <= 1.0 or not 0.0 < tighten < 1.0:
            raise ValueError("need relax > 1 and 0 < tighten < 1")
        self.target = target
        self.slo_p99 = float(slo_p99)
        self.min_interval = float(min_interval)
        self.max_interval = float(max_interval)
        self.relax = float(relax)
        self.tighten = float(tighten)
        self.headroom = float(headroom)
        self.quantile = float(quantile)
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.windows = 0
        self.breaches = 0
        #: (time, window p99, old interval, new interval) per adjustment
        self.actions: list[tuple[float, float, float, float]] = []

    def update(self, now: float, latencies: np.ndarray) -> None:
        """Observe one window of per-request latencies; maybe adjust."""
        arr = np.asarray(latencies, dtype=np.float64)
        if arr.size == 0:
            return
        self.windows += 1
        p = float(np.quantile(arr, self.quantile))
        old = float(self.target.interval)
        if p > self.slo_p99:
            self.breaches += 1
            new = min(old * self.relax, self.max_interval)
        elif p < self.slo_p99 * self.headroom:
            new = max(old * self.tighten, self.min_interval)
        else:
            new = old
        if new != old:
            self.target.interval = new
            self.actions.append((now, p, old, new))
            self.tracer.emit(
                now, "sla.adjust", p99=p, slo=self.slo_p99,
                interval=new, previous=old,
            )
            self.probe.count(
                "repro_sla_adjustments_total",
                help="SLA controller checkpoint-interval changes",
                direction="relax" if new > old else "tighten",
            )
        self.probe.gauge_set(
            "repro_sla_checkpoint_interval_seconds",
            float(self.target.interval),
            help="Checkpoint interval as steered by the SLA controller",
        )

    @property
    def breach_rate(self) -> float:
        return self.breaches / self.windows if self.windows else 0.0

    def summary(self) -> dict:
        return {
            "slo_p99": self.slo_p99,
            "windows": self.windows,
            "breaches": self.breaches,
            "breach_rate": self.breach_rate,
            "adjustments": len(self.actions),
            "interval_final": float(self.target.interval),
        }
