"""Seeded open-loop arrival streams, generated in vectorized chunks.

An *open-loop* stream fixes arrival times in advance: load does not
back off when the cluster slows down, which is exactly what makes
checkpoint pause windows and brownouts visible as queueing tail
latency.  Generation is numpy-vectorized — one :class:`ArrivalChunk` of
tens of thousands of requests per draw, never one Python event per
request — so millions of requests per run cost a handful of array ops.

Chunk-size invariance (bit-exact) is a hard contract: ``chunks()``
under any ``chunk_requests`` yields byte-identical times/service values
to one monolithic draw.  Two properties make that true:

* the RNG streams are private to the generator and strictly
  sequential — numpy ``Generator`` distributions consume the bit
  stream one value at a time, so draws of n1 then n2 values equal one
  draw of n1+n2 values;
* absolute times come from ``cumsum(concat(([carry], gaps)))[1:]``
  where ``carry`` is the last emitted absolute time (0.0 initially):
  IEEE-754 addition then reproduces exactly the same left-to-right
  partial sums as a single long cumsum.

``tests/test_serving_determinism.py`` pins both properties.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..sim.rng import RngRegistry

__all__ = ["ArrivalConfig", "ArrivalChunk", "OpenLoopArrivals", "stream_digest"]

_SERVICE_DISTS = ("exponential", "lognormal")


@dataclass(frozen=True)
class ArrivalConfig:
    """Shape of one open-loop request stream.

    ``rate`` is the Poisson arrival rate (requests/s); ``service_mean``
    the mean processor-sharing service demand in seconds of dedicated
    server time.  ``service_dist`` picks exponential (M/M/·) or
    lognormal (heavier tail; ``service_sigma`` is the log-space shape)
    demands.  ``chunk_requests`` only controls generation batch size —
    results are bit-identical for any value.
    """

    rate: float = 200.0
    n_requests: int = 100_000
    service_mean: float = 0.02
    service_dist: str = "exponential"
    service_sigma: float = 1.0
    chunk_requests: int = 65_536

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.service_mean <= 0:
            raise ValueError(
                f"service_mean must be > 0, got {self.service_mean}"
            )
        if self.service_dist not in _SERVICE_DISTS:
            raise ValueError(
                f"service_dist must be one of {_SERVICE_DISTS}, "
                f"got {self.service_dist!r}"
            )
        if self.chunk_requests < 1:
            raise ValueError(
                f"chunk_requests must be >= 1, got {self.chunk_requests}"
            )

    @property
    def offered_load_per_server(self) -> float:
        """rate × mean demand — divide by replica count for utilization."""
        return self.rate * self.service_mean


@dataclass(frozen=True)
class ArrivalChunk:
    """One contiguous batch of requests.

    ``times`` are absolute arrival seconds (strictly increasing within
    and across chunks); ``service`` the matching PS demands; request
    ids are ``start_id .. start_id + n - 1`` in array order.
    """

    start_id: int
    times: np.ndarray
    service: np.ndarray

    @property
    def n(self) -> int:
        return int(self.times.size)

    @property
    def end(self) -> float:
        return float(self.times[-1])


class OpenLoopArrivals:
    """Chunked generator over private, named RNG streams.

    One instance is single-use: :meth:`chunks` consumes the underlying
    bit streams.  Build a fresh instance (same registry seed, same
    prefix) to replay the identical trace — that is how paired-study
    policies share one arrival trace.
    """

    def __init__(
        self,
        config: ArrivalConfig,
        rngs: RngRegistry,
        prefix: str = "serving",
    ):
        self.config = config
        self._rngs = rngs
        self._prefix = prefix
        self._gaps = rngs.stream(f"{prefix}/gaps")
        self._service = rngs.stream(f"{prefix}/service")

    def _draw_service(self, n: int, rng=None) -> np.ndarray:
        cfg = self.config
        rng = self._service if rng is None else rng
        if cfg.service_dist == "exponential":
            return rng.exponential(cfg.service_mean, n)
        # lognormal parameterized to the requested mean:
        # E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        mu = math.log(cfg.service_mean) - cfg.service_sigma**2 / 2.0
        return rng.lognormal(mu, cfg.service_sigma, n)

    def clone_sampler(self):
        """Scalar demand sampler for clone siblings (own RNG stream).

        Demand variability is modeled as *server-side* (slow replica,
        cold cache): each clone sibling draws an i.i.d. demand from the
        same service distribution.  First-completion-wins then keeps
        the winner's (smaller) demand, so clone-to-d trims the tail
        instead of multiplying offered work — the classic redundancy
        model.  The stream is separate from the primary service stream,
        so non-cloning policies replay bit-identical traces.
        """
        rng = self._rngs.stream(f"{self._prefix}/clone-service")

        def draw() -> float:
            return float(self._draw_service(1, rng)[0])

        return draw

    def chunks(self) -> Iterator[ArrivalChunk]:
        """Yield the stream as :class:`ArrivalChunk` batches."""
        cfg = self.config
        carry = 0.0
        emitted = 0
        while emitted < cfg.n_requests:
            n = min(cfg.chunk_requests, cfg.n_requests - emitted)
            gaps = self._gaps.exponential(1.0 / cfg.rate, n)
            times = np.cumsum(np.concatenate(([carry], gaps)))[1:]
            carry = float(times[-1])
            yield ArrivalChunk(emitted, times, self._draw_service(n))
            emitted += n


def stream_digest(arrivals: OpenLoopArrivals) -> str:
    """SHA-256 over the full stream's raw bytes (consumes the stream).

    The chunk-invariance gate: digests under different
    ``chunk_requests`` must be identical.  Times and service values are
    interleaved per request so the byte stream does not depend on where
    the chunk boundaries fall.
    """
    h = hashlib.sha256()
    for chunk in arrivals.chunks():
        rec = np.empty(2 * chunk.n, dtype=np.float64)
        rec[0::2] = chunk.times
        rec[1::2] = chunk.service
        h.update(rec.tobytes())
    return h.hexdigest()
