"""Cluster failure injection.

The central correlation fact that motivates DVDC's orthogonal placement
(Section IV-B): *failures strike physical nodes*, and a node failure
takes down every VM resident on it simultaneously.  The injector draws
per-node failure times from a :class:`FailureDistribution` and delivers
node-crash events into the simulation; subscribers (hypervisors, the
DVDC coordinator, recovery manager) react.

Repair is modeled per node with a separate distribution (deterministic
by default); a failed node is down for the repair interval, then rejoins
empty — its VMs must be reconstructed elsewhere by the recovery layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry import probe_of
from .distributions import Exponential, FailureDistribution

__all__ = ["FailureEvent", "FailureInjector", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """A node crash occurrence."""

    time: float
    node_id: int
    #: index of this failure on the node (0 = first crash)
    ordinal: int


@dataclass
class FailureSchedule:
    """A pre-drawn, replayable trace of failures for paired experiments.

    Using one schedule across policies (diskful vs. diskless) removes the
    failure-sampling noise from the comparison — common random numbers.
    """

    events: list[FailureEvent] = field(default_factory=list)

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        dist: FailureDistribution,
        n_nodes: int,
        horizon: float,
        repair_time: float = 0.0,
    ) -> "FailureSchedule":
        """Draw independent per-node failure processes up to ``horizon``.

        Inter-failure clocks pause during repair: node n's k-th failure
        occurs at ``sum of k draws + k*repair_time``.
        """
        if n_nodes < 1:
            raise ValueError(f"need >= 1 node, got {n_nodes}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if repair_time < 0:
            raise ValueError(f"repair_time must be >= 0, got {repair_time}")
        events: list[FailureEvent] = []
        for node in range(n_nodes):
            t = 0.0
            ordinal = 0
            while True:
                t += dist.sample(rng)
                if t > horizon:
                    break
                events.append(FailureEvent(time=t, node_id=node, ordinal=ordinal))
                ordinal += 1
                t += repair_time
        events.sort(key=lambda e: (e.time, e.node_id))
        return cls(events)

    def for_node(self, node_id: int) -> list[FailureEvent]:
        return [e for e in self.events if e.node_id == node_id]

    def __len__(self) -> int:
        return len(self.events)


class FailureInjector:
    """Delivers node failures into a live simulation.

    Two modes:

    * **online** — pass a distribution and rng; each node gets an
      independent renewal process sampled lazily as the run advances;
    * **replay** — pass a :class:`FailureSchedule`; events are delivered
      verbatim (used for paired comparisons and regression tests).

    Subscribers are callables ``fn(event: FailureEvent)`` invoked at the
    failure instant, in subscription order.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        dist: FailureDistribution | None = None,
        rng: np.random.Generator | None = None,
        schedule: FailureSchedule | None = None,
        repair_time: float = 0.0,
        tracer: Tracer = NULL_TRACER,
    ):
        if (dist is None) == (schedule is None):
            raise ValueError("provide exactly one of dist (online) or schedule (replay)")
        if dist is not None and rng is None:
            raise ValueError("online mode requires an rng")
        self.sim = sim
        self.n_nodes = n_nodes
        self.dist = dist
        self.rng = rng
        self.schedule = schedule
        self.repair_time = float(repair_time)
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self._subscribers: list[Callable[[FailureEvent], None]] = []
        self._delivered: list[FailureEvent] = []
        self._ordinals = [0] * n_nodes
        self._started = False

    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[FailureEvent], None]) -> None:
        self._subscribers.append(fn)

    @property
    def delivered(self) -> Sequence[FailureEvent]:
        return tuple(self._delivered)

    def start(self) -> None:
        """Arm the injector; idempotent."""
        if self._started:
            return
        self._started = True
        if self.schedule is not None:
            for ev in self.schedule.events:
                if ev.node_id >= self.n_nodes:
                    raise ValueError(
                        f"schedule references node {ev.node_id} >= n_nodes {self.n_nodes}"
                    )
                self.sim.at(ev.time, self._fire, ev)
        else:
            for node in range(self.n_nodes):
                self._arm_next(node)

    # ------------------------------------------------------------------
    def _arm_next(self, node_id: int) -> None:
        assert self.dist is not None and self.rng is not None
        delay = self.dist.sample(self.rng)
        self.sim.schedule(delay, self._fire_online, node_id)

    def _fire_online(self, node_id: int) -> None:
        ev = FailureEvent(
            time=self.sim.now, node_id=node_id, ordinal=self._ordinals[node_id]
        )
        self._ordinals[node_id] += 1
        self._deliver(ev)
        # next failure clock starts after repair completes
        self.sim.schedule(self.repair_time, self._arm_next_cb, node_id)

    def _arm_next_cb(self, node_id: int) -> None:
        self._arm_next(node_id)

    def _fire(self, ev: FailureEvent) -> None:
        self._deliver(ev)

    def _deliver(self, ev: FailureEvent) -> None:
        self._delivered.append(ev)
        self.tracer.emit(self.sim.now, "failure.node", node=ev.node_id, ordinal=ev.ordinal)
        self.probe.count(
            "repro_failures_total",
            help="Failures injected, by kind and failure domain",
            kind="node", domain=f"node{ev.node_id}",
        )
        for fn in self._subscribers:
            fn(ev)


def poisson_injector(
    sim: Simulator,
    n_nodes: int,
    mtbf_per_node: float,
    rng: np.random.Generator,
    repair_time: float = 0.0,
    tracer: Tracer = NULL_TRACER,
) -> FailureInjector:
    """Convenience: exponential per-node failures with the given MTBF."""
    return FailureInjector(
        sim,
        n_nodes,
        dist=Exponential(1.0 / mtbf_per_node),
        rng=rng,
        repair_time=repair_time,
        tracer=tracer,
    )
