"""Failure-time distributions.

The Section V model assumes Poisson arrivals (exponential inter-failure
times); the simulator additionally supports Weibull, lognormal, and the
"bathtub" composite the paper mentions (Section V: infant mortality +
useful life + wear-out) so that the model's sensitivity to the Poisson
assumption can be measured.

Every distribution exposes:

* ``sample(rng)`` / ``sample_n(rng, n)`` — draw inter-failure times;
* ``mean()`` — the MTBF implied by the parameters;
* ``rate()`` — 1/mean (the λ used throughout the analytical model);
* ``cdf(t)`` / ``survival(t)`` — closed forms where available;
* ``hazard(t)`` — instantaneous failure rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Bathtub",
    "from_mtbf",
]


class FailureDistribution:
    """Abstract interface for inter-failure time distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_n(rng, 1)[0])

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError

    def rate(self) -> float:
        """Average failure rate λ = 1/MTBF."""
        return 1.0 / self.mean()

    def cdf(self, t: float) -> float:
        raise NotImplementedError

    def survival(self, t: float) -> float:
        return 1.0 - self.cdf(t)

    def hazard(self, t: float) -> float:
        """h(t) = f(t)/S(t); default via numerical differentiation."""
        eps = max(1e-9, 1e-6 * max(t, 1.0))
        s = self.survival(t)
        if s <= 0.0:
            return math.inf
        return (self.cdf(t + eps) - self.cdf(t)) / (eps * s)


@dataclass(frozen=True)
class Exponential(FailureDistribution):
    """Memoryless failures — the Poisson-process assumption of Section V.

    Parameters
    ----------
    lam:
        Failure rate λ in failures/second (1/MTBF).
    """

    lam: float

    def __post_init__(self) -> None:
        if not self.lam > 0:
            raise ValueError(f"rate must be > 0, got {self.lam}")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.lam, size=n)

    def mean(self) -> float:
        return 1.0 / self.lam

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return -math.expm1(-self.lam * t)

    def hazard(self, t: float) -> float:
        return self.lam


@dataclass(frozen=True)
class Weibull(FailureDistribution):
    """Weibull(shape k, scale λ_s) failures.

    ``shape < 1`` gives decreasing hazard (infant mortality), ``shape > 1``
    increasing hazard (wear-out), ``shape == 1`` reduces to Exponential.
    Schroeder & Gibson's HPC failure logs fit shape ≈ 0.7–0.8.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if not (self.shape > 0 and self.scale > 0):
            raise ValueError(f"shape/scale must be > 0, got {self.shape}, {self.scale}")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return -math.expm1(-((t / self.scale) ** self.shape))

    def hazard(self, t: float) -> float:
        if t < 0:
            return 0.0
        if t == 0.0:
            if self.shape < 1:
                return math.inf
            if self.shape == 1:
                return 1.0 / self.scale
            return 0.0
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    @classmethod
    def from_mtbf(cls, mtbf: float, shape: float) -> "Weibull":
        """Weibull with the given mean and shape."""
        scale = mtbf / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)


@dataclass(frozen=True)
class LogNormal(FailureDistribution):
    """Lognormal(μ, σ) failure times (heavy-tailed repair/failure model)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not self.sigma > 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return 0.5 * (1.0 + special.erf((math.log(t) - self.mu) / (self.sigma * math.sqrt(2))))

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Lognormal with given mean and coefficient of variation."""
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu=mu, sigma=math.sqrt(sigma2))


@dataclass(frozen=True)
class Bathtub(FailureDistribution):
    """Bathtub-curve composite (Section V's caveat to the Poisson model).

    Mixture of three hazards: a decreasing-hazard Weibull (infant
    mortality), a constant-hazard Exponential (useful life), and an
    increasing-hazard Weibull (wear-out).  Sampling takes the minimum of
    one draw from each — i.e. the components race — which yields
    h(t) = h_infant(t) + h_life + h_wear(t), the standard competing-risks
    bathtub construction.
    """

    infant: Weibull
    life: Exponential
    wearout: Weibull

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        draws = np.stack(
            [
                self.infant.sample_n(rng, n),
                self.life.sample_n(rng, n),
                self.wearout.sample_n(rng, n),
            ]
        )
        return draws.min(axis=0)

    def survival(self, t: float) -> float:
        return self.infant.survival(t) * self.life.survival(t) * self.wearout.survival(t)

    def cdf(self, t: float) -> float:
        return 1.0 - self.survival(t)

    def hazard(self, t: float) -> float:
        return self.infant.hazard(t) + self.life.hazard(t) + self.wearout.hazard(t)

    def mean(self) -> float:
        """Mean via numerical integration of the survival function."""
        from scipy import integrate

        upper = 20.0 * self.life.mean()
        val, _ = integrate.quad(self.survival, 0.0, upper, limit=200)
        return val

    @classmethod
    def typical(cls, mtbf: float) -> "Bathtub":
        """A bathtub whose useful-life component has the given MTBF, with
        mild infant-mortality and wear-out components (each an order of
        magnitude rarer over the life phase)."""
        return cls(
            infant=Weibull.from_mtbf(10.0 * mtbf, shape=0.5),
            life=Exponential(1.0 / mtbf),
            wearout=Weibull.from_mtbf(10.0 * mtbf, shape=3.0),
        )


def from_mtbf(mtbf: float, kind: str = "exponential", **kwargs) -> FailureDistribution:
    """Factory: build a distribution with the given MTBF.

    ``kind`` ∈ {"exponential", "weibull", "lognormal", "bathtub"}.
    Extra parameters: ``shape`` (weibull), ``cv`` (lognormal).
    """
    if mtbf <= 0:
        raise ValueError(f"MTBF must be > 0, got {mtbf}")
    if kind == "exponential":
        return Exponential(1.0 / mtbf)
    if kind == "weibull":
        return Weibull.from_mtbf(mtbf, shape=kwargs.get("shape", 0.7))
    if kind == "lognormal":
        return LogNormal.from_mean_cv(mtbf, cv=kwargs.get("cv", 1.5))
    if kind == "bathtub":
        return Bathtub.typical(mtbf)
    raise ValueError(f"unknown distribution kind {kind!r}")
