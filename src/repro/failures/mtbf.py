"""MTBF aggregation and scaling helpers.

The introduction's scaling argument — more components, shorter system
MTBF — is quantified here.  For independent exponential components the
system-level rate is the sum of component rates, so a cluster of ``n``
nodes each with MTBF ``m`` has system MTBF ``m / n``.  These helpers
convert between per-node and per-system views and reproduce the paper's
headline operating point (cluster MTBF 3 h ⇒ λ = 9.26e-5 /s).
"""

from __future__ import annotations

import math

__all__ = [
    "system_mtbf",
    "node_mtbf_for_system",
    "rate_from_mtbf",
    "mtbf_from_rate",
    "checkpoint_viability",
    "PAPER_LAMBDA",
    "PAPER_MTBF_SECONDS",
]

#: The paper's Section V-B operating point: 3 h cluster MTBF.
PAPER_MTBF_SECONDS = 3.0 * 3600.0
#: λ = 1/MTBF quoted in the paper as 9.26e-5 failures/sec.
PAPER_LAMBDA = 1.0 / PAPER_MTBF_SECONDS


def rate_from_mtbf(mtbf: float) -> float:
    """λ = 1/MTBF (failures per second)."""
    if mtbf <= 0:
        raise ValueError(f"MTBF must be > 0, got {mtbf}")
    return 1.0 / mtbf


def mtbf_from_rate(lam: float) -> float:
    """MTBF = 1/λ."""
    if lam <= 0:
        raise ValueError(f"rate must be > 0, got {lam}")
    return 1.0 / lam


def system_mtbf(node_mtbf: float, n_nodes: int) -> float:
    """MTBF of a system of ``n_nodes`` independent exponential nodes."""
    if n_nodes < 1:
        raise ValueError(f"need >= 1 node, got {n_nodes}")
    return node_mtbf / n_nodes


def node_mtbf_for_system(target_system_mtbf: float, n_nodes: int) -> float:
    """Per-node MTBF required so the whole system has the target MTBF."""
    if n_nodes < 1:
        raise ValueError(f"need >= 1 node, got {n_nodes}")
    return target_system_mtbf * n_nodes


def checkpoint_viability(mtbf: float, checkpoint_time: float) -> float:
    """Schroeder–Gibson viability ratio MTBF / checkpoint-time.

    The introduction cites the projection that this ratio drops below 1
    (the system can do nothing but checkpoint and still lose data).
    Values ≤ 1 mean checkpointing alone cannot keep up; larger is safer.
    """
    if checkpoint_time <= 0:
        raise ValueError(f"checkpoint time must be > 0, got {checkpoint_time}")
    return mtbf / checkpoint_time


def expected_failures(lam: float, horizon: float) -> float:
    """Expected number of Poisson failures in ``horizon`` seconds."""
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    return lam * horizon


def probability_failure_free(lam: float, horizon: float) -> float:
    """P(no failure in ``horizon``) = e^{-λ·horizon}."""
    return math.exp(-lam * max(horizon, 0.0))
