"""Failure domains: correlated node failures (racks, PDUs, switches).

Fig. 2's argument is literally about *controller* domains: grid each
RAID group across controllers so one controller failure costs each
group at most one disk.  In a cluster the same correlation exists one
level up — nodes share racks, power circuits, and top-of-rack switches,
and those fail as units.  This module models it:

* :class:`FailureDomainMap` — which node lives in which domain;
* :func:`draw_domain_schedule` — a replayable schedule in which whole
  domains crash at one instant (every member node fails
  simultaneously);
* domain-aware placement lives in :func:`repro.core.groups.\
build_orthogonal_layout` (``domains=`` parameter): members of a group
  are spread across *domains*, not merely nodes, so a full-rack loss
  still costs each group at most one element — single-parity
  recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distributions import FailureDistribution
from .injector import FailureEvent, FailureSchedule

__all__ = ["FailureDomainMap", "racks", "draw_domain_schedule"]


@dataclass(frozen=True)
class FailureDomainMap:
    """Assignment of nodes to correlated failure domains.

    ``assignment[node_id] == domain_id``.  Domains are dense integers
    starting at 0.
    """

    assignment: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.assignment:
            raise ValueError("need at least one node")
        doms = set(self.assignment)
        if doms != set(range(len(doms))):
            raise ValueError(
                f"domain ids must be dense 0..k-1, got {sorted(doms)}"
            )

    @property
    def n_nodes(self) -> int:
        return len(self.assignment)

    @property
    def n_domains(self) -> int:
        return len(set(self.assignment))

    def domain_of(self, node_id: int) -> int:
        if not (0 <= node_id < self.n_nodes):
            raise ValueError(f"node {node_id} out of range")
        return self.assignment[node_id]

    def nodes_in(self, domain_id: int) -> list[int]:
        return [n for n, d in enumerate(self.assignment) if d == domain_id]

    def domains(self) -> list[int]:
        return sorted(set(self.assignment))


def racks(n_nodes: int, nodes_per_rack: int) -> FailureDomainMap:
    """Consecutive nodes grouped into racks of ``nodes_per_rack``."""
    if n_nodes < 1 or nodes_per_rack < 1:
        raise ValueError("n_nodes and nodes_per_rack must be >= 1")
    return FailureDomainMap(
        tuple(i // nodes_per_rack for i in range(n_nodes))
    )


def draw_domain_schedule(
    rng: np.random.Generator,
    dist: FailureDistribution,
    domains: FailureDomainMap,
    horizon: float,
    repair_time: float = 0.0,
) -> FailureSchedule:
    """Replayable schedule of whole-domain crashes.

    Each *domain* gets an independent renewal failure process from
    ``dist`` (so ``dist``'s MTBF is the per-rack MTBF); at each domain
    failure instant every node in the domain emits a simultaneous
    :class:`FailureEvent`.
    """
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    events: list[FailureEvent] = []
    ordinals = [0] * domains.n_nodes
    for domain in domains.domains():
        t = 0.0
        while True:
            t += dist.sample(rng)
            if t > horizon:
                break
            for node in domains.nodes_in(domain):
                events.append(FailureEvent(time=t, node_id=node,
                                           ordinal=ordinals[node]))
                ordinals[node] += 1
            t += repair_time
    events.sort(key=lambda e: (e.time, e.node_id))
    return FailureSchedule(events)
