"""Failure modeling: distributions, injection, and MTBF arithmetic."""

from .domains import FailureDomainMap, draw_domain_schedule, racks
from .distributions import (
    Bathtub,
    Exponential,
    FailureDistribution,
    LogNormal,
    Weibull,
    from_mtbf,
)
from .injector import FailureEvent, FailureInjector, FailureSchedule, poisson_injector
from .mtbf import (
    PAPER_LAMBDA,
    PAPER_MTBF_SECONDS,
    checkpoint_viability,
    expected_failures,
    mtbf_from_rate,
    node_mtbf_for_system,
    probability_failure_free,
    rate_from_mtbf,
    system_mtbf,
)

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Bathtub",
    "from_mtbf",
    "FailureDomainMap",
    "racks",
    "draw_domain_schedule",
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "poisson_injector",
    "system_mtbf",
    "node_mtbf_for_system",
    "rate_from_mtbf",
    "mtbf_from_rate",
    "checkpoint_viability",
    "expected_failures",
    "probability_failure_free",
    "PAPER_LAMBDA",
    "PAPER_MTBF_SECONDS",
]
