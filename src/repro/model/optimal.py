"""Optimal checkpoint interval search.

Fig. 5 marks with an "X" the minimum of each method's expected-time
curve — the optimal checkpoint interval.  The overhead may itself depend
on the interval (incremental capture), so the general search minimizes

    f(N) = E[T_chk;ov](λ, T, N, T_ov(N), T_r)

over N.  The classic first-order approximations are provided as
cross-checks:

* Young (1974):  N* ≈ sqrt(2 · T_ov / λ)
* Daly (2006):   N* ≈ sqrt(2 · T_ov · MTBF) · [1 + ⅓·sqrt(T_ov/(2·MTBF))
                 + (T_ov/MTBF)/9] − T_ov   (valid T_ov < 2·MTBF)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from scipy import optimize

from .poisson import expected_time_with_overhead

__all__ = [
    "young_interval",
    "daly_interval",
    "OptimalInterval",
    "find_optimal_interval",
]


def young_interval(lam: float, overhead: float) -> float:
    """Young's first-order optimum ``sqrt(2·T_ov/λ)``."""
    if lam <= 0 or overhead <= 0:
        raise ValueError("lam and overhead must be > 0")
    return math.sqrt(2.0 * overhead / lam)


def daly_interval(lam: float, overhead: float) -> float:
    """Daly's higher-order perturbation optimum."""
    if lam <= 0 or overhead <= 0:
        raise ValueError("lam and overhead must be > 0")
    mtbf = 1.0 / lam
    if overhead >= 2.0 * mtbf:
        return mtbf  # Daly's prescription outside the expansion's validity
    x = math.sqrt(2.0 * overhead * mtbf)
    corr = 1.0 + math.sqrt(overhead / (2.0 * mtbf)) / 3.0 + (overhead / mtbf) / 9.0
    return x * corr - overhead


@dataclass(frozen=True)
class OptimalInterval:
    """Search result: the minimizing interval and its cost."""

    interval: float
    expected_time: float
    expected_ratio: float
    overhead_at_optimum: float


def find_optimal_interval(
    lam: float,
    T: float,
    overhead_of: Callable[[float], float] | float,
    T_r: float = 0.0,
    bounds: tuple[float, float] | None = None,
) -> OptimalInterval:
    """Minimize the expected completion time over the interval ``N``.

    ``overhead_of`` is either a constant ``T_ov`` or a callable
    ``T_ov(N)`` (incremental pipelines).  The search brackets with a
    log-spaced coarse grid, then polishes with bounded scalar
    minimization — robust against the flat, wide valleys these curves
    have near the optimum.
    """
    if callable(overhead_of):
        ov = overhead_of
    else:
        const = float(overhead_of)
        if const < 0:
            raise ValueError(f"overhead must be >= 0, got {const}")
        ov = lambda N: const  # noqa: E731

    def cost(N: float) -> float:
        return expected_time_with_overhead(lam, T, N, ov(N), T_r)

    lo, hi = bounds if bounds is not None else (1e-2, T)
    if not (0 < lo < hi):
        raise ValueError(f"invalid bounds ({lo}, {hi})")
    # coarse log grid to bracket the optimum
    n_grid = 200
    grid = [lo * (hi / lo) ** (i / (n_grid - 1)) for i in range(n_grid)]
    costs = [cost(N) for N in grid]
    i_best = min(range(n_grid), key=costs.__getitem__)
    b_lo = grid[max(0, i_best - 1)]
    b_hi = grid[min(n_grid - 1, i_best + 1)]
    res = optimize.minimize_scalar(cost, bounds=(b_lo, b_hi), method="bounded")
    # the polish can only help; keep the better of grid vs polish
    n_star, e_star = (
        (float(res.x), float(res.fun))
        if res.fun <= costs[i_best]
        else (grid[i_best], costs[i_best])
    )
    return OptimalInterval(
        interval=n_star,
        expected_time=e_star,
        expected_ratio=e_star / T,
        overhead_at_optimum=ov(n_star),
    )
