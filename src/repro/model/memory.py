"""Memory-footprint accounting for the checkpointing schemes.

Section II-B2 is explicit about space: Plank's *normal* diskless variant
"needs three times the memory of the process" (process + current +
previous checkpoint); *forked* copy-on-write needs "2I during
checkpointing"; and the conclusion sells DVDC as achieving its
resilience "for a modest memory overhead".  This module makes those
claims executable: per-node steady-state and checkpoint-peak RAM for
each scheme, and the cluster-wide overhead ratio (total RAM needed /
total protected VM memory).

Schemes
-------
``diskful``
    Checkpoints live on the NAS; nodes hold only the running images
    (plus a transient COW capture buffer at peak).
``diskless_normal``
    Plank's naive variant: full in-memory copy made synchronously, both
    current and previous checkpoints retained — the 3× case.
``dvdc``
    The paper's scheme: image + committed checkpoint per VM, one parity
    block per hosted group, plus the staged parity copy during a cycle
    (the two-phase requirement).
``dvdc_rdp``
    The double-parity extension: two shards per group.
``remus``
    Active/standby replication: a full standby image per protected VM
    on the backup host.
"""

from __future__ import annotations

from dataclasses import dataclass

from .overhead import ClusterModel

__all__ = ["MemoryFootprint", "scheme_footprint", "SCHEMES"]

SCHEMES = ("diskful", "diskless_normal", "dvdc", "dvdc_rdp", "remus")


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-node and cluster-wide RAM requirements of one scheme.

    ``steady_per_node`` — bytes resident between checkpoints;
    ``peak_per_node`` — bytes at the worst instant of a checkpoint
    cycle; ``overhead_ratio`` — cluster peak / total protected VM
    memory (1.0 = no overhead beyond the running guests).
    """

    scheme: str
    steady_per_node: float
    peak_per_node: float
    cluster_steady: float
    cluster_peak: float
    overhead_ratio: float

    def __post_init__(self) -> None:
        if self.peak_per_node < self.steady_per_node - 1e-9:
            raise ValueError("peak cannot be below steady state")


def scheme_footprint(
    cluster: ClusterModel,
    scheme: str,
    group_size: int | None = None,
    capture_buffer_fraction: float = 0.1,
) -> MemoryFootprint:
    """Compute the footprint of ``scheme`` on ``cluster``.

    ``group_size`` defaults to ``n_nodes - 1`` (the Fig. 4 rotation);
    ``capture_buffer_fraction`` sizes the transient COW buffer of a
    forked capture (the fraction of the image dirtied during the
    checkpoint window — small for the 40 ms pause).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick from {SCHEMES}")
    if not (0.0 <= capture_buffer_fraction <= 1.0):
        raise ValueError("capture_buffer_fraction must be in [0, 1]")
    m = cluster.vm_memory_bytes
    vms = cluster.vms_per_node
    n = cluster.n_nodes
    k = group_size if group_size is not None else max(1, n - 1)
    total_vm = n * vms * m
    cow = capture_buffer_fraction * m * vms

    if scheme == "diskful":
        steady = vms * m
        peak = steady + cow
    elif scheme == "diskless_normal":
        # image + previous checkpoint held; during checkpointing the new
        # copy coexists with both -> 3x (Plank's "normal")
        steady = vms * m * 2.0
        peak = vms * m * 3.0
    elif scheme == "dvdc":
        # image + committed checkpoint per VM; one parity block per
        # hosted group (n groups of size k over n*vms VMs -> vms*n/k
        # groups, one per node on average under rotation)
        groups_total = (n * vms) / k
        parity_per_node = groups_total / n * m
        steady = vms * m * 2.0 + parity_per_node
        # two-phase: staged parity copy coexists with the old block
        peak = steady + parity_per_node + cow
    elif scheme == "dvdc_rdp":
        groups_total = (n * vms) / k
        parity_per_node = 2.0 * groups_total / n * m
        steady = vms * m * 2.0 + parity_per_node
        peak = steady + parity_per_node + cow
    else:  # remus
        # every protected VM needs a standby image on another host; the
        # standby load spreads across the cluster, so per node: own
        # images + (vms) standby images for peers + transmit buffer
        steady = vms * m * 2.0
        peak = steady + cow
    cluster_steady = steady * n
    cluster_peak = peak * n
    return MemoryFootprint(
        scheme=scheme,
        steady_per_node=steady,
        peak_per_node=peak,
        cluster_steady=cluster_steady,
        cluster_peak=cluster_peak,
        overhead_ratio=cluster_peak / total_vm,
    )
