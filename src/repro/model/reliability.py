"""Reliability analysis: how "highly fault tolerant" is the scheme?

The paper's title claims high fault tolerance; single XOR parity
tolerates one failure per group *at a time*.  The exposure is the
*vulnerability window* W after a crash — recovery plus the degraded
interval until parity is re-homed — during which a second node failure
inside the same group is fatal.  Classic RAID reliability arithmetic
(Patterson/Gibson/Katz, which the paper builds on) transfers directly:

* **MTTDL** (mean time to data loss) for an ``n``-node cluster of
  per-node rate ``λ`` and window ``W``:

  - XOR (tolerates 1):  ``MTTDL₁ ≈ 1 / (n·λ · p₂)`` with
    ``p₂ = 1 − e^{−(n−1)·λ·W}`` the chance a second node dies inside
    the window;
  - RDP (tolerates 2):  ``MTTDL₂ ≈ 1 / (n·λ · p₂ · p₃)`` with
    ``p₃ = 1 − e^{−(n−2)·λ·W}`` a third death inside the doubly
    degraded window.

* **Job survival**: failures arrive at rate ``n·λ``; over a wall-clock
  span ``T_wall`` the expected number is ``n·λ·T_wall`` and each is
  fatal with probability ``p₂`` (resp. ``p₂·p₃``), so
  ``P(survive) ≈ exp(−n·λ·T_wall·p_fatal)``.

These are first-order (windows don't overlap, λW ≪ 1) — exactly the
regime of the paper's operating point — and the test suite checks them
against the end-to-end cluster simulation's realized completion rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "fatal_probability_per_failure",
    "mttdl",
    "job_survival_probability",
    "ReliabilityComparison",
    "compare_codes",
]


def _p_within(rate: float, window: float) -> float:
    """P(at least one arrival of ``rate`` within ``window``)."""
    return -math.expm1(-rate * window)


def fatal_probability_per_failure(
    lam_node: float, n_nodes: int, window: float, tolerance: int = 1
) -> float:
    """Probability that one node crash escalates to data loss.

    ``tolerance`` failures can be absorbed; loss requires ``tolerance``
    *further* crashes inside successive vulnerability windows.
    """
    if lam_node <= 0 or window < 0:
        raise ValueError("lam_node must be > 0 and window >= 0")
    if n_nodes < 2:
        raise ValueError("need >= 2 nodes")
    if tolerance < 1:
        raise ValueError("tolerance must be >= 1")
    p = 1.0
    for extra in range(1, tolerance + 1):
        survivors = n_nodes - extra
        if survivors <= 0:
            return 0.0
        p *= _p_within(survivors * lam_node, window)
    return p


def mttdl(
    lam_node: float, n_nodes: int, window: float, tolerance: int = 1
) -> float:
    """Mean time to data loss for the protected cluster."""
    p_fatal = fatal_probability_per_failure(lam_node, n_nodes, window, tolerance)
    if p_fatal == 0.0:
        return math.inf
    return 1.0 / (n_nodes * lam_node * p_fatal)


def job_survival_probability(
    lam_node: float,
    n_nodes: int,
    wall_time: float,
    window: float,
    tolerance: int = 1,
) -> float:
    """P(a job of realized length ``wall_time`` never hits data loss)."""
    if wall_time < 0:
        raise ValueError("wall_time must be >= 0")
    p_fatal = fatal_probability_per_failure(lam_node, n_nodes, window, tolerance)
    return math.exp(-n_nodes * lam_node * wall_time * p_fatal)


@dataclass(frozen=True)
class ReliabilityComparison:
    """XOR vs RDP at one operating point."""

    lam_node: float
    n_nodes: int
    window: float
    mttdl_xor: float
    mttdl_rdp: float
    survival_xor: float
    survival_rdp: float

    @property
    def mttdl_gain(self) -> float:
        if math.isinf(self.mttdl_rdp):
            return math.inf
        return self.mttdl_rdp / self.mttdl_xor


def compare_codes(
    lam_node: float, n_nodes: int, wall_time: float, window: float
) -> ReliabilityComparison:
    """Side-by-side XOR vs RDP reliability at one operating point."""
    return ReliabilityComparison(
        lam_node=lam_node,
        n_nodes=n_nodes,
        window=window,
        mttdl_xor=mttdl(lam_node, n_nodes, window, tolerance=1),
        mttdl_rdp=mttdl(lam_node, n_nodes, window, tolerance=2),
        survival_xor=job_survival_probability(
            lam_node, n_nodes, wall_time, window, tolerance=1
        ),
        survival_rdp=job_survival_probability(
            lam_node, n_nodes, wall_time, window, tolerance=2
        ),
    )
