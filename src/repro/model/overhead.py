"""Per-checkpoint overhead pipelines — Section V-B's accounting.

"In both cases, we can essentially look at the amount of data and speed
of data transmission for each operation to determine overhead times."
The model charges a serialized three-stage pipeline per checkpoint:

* **disk-full baseline** — capture pause → network fan-in through the
  single NAS ingress (``total / B_nas``) → NAS disk write
  (``total / B_disk``);
* **diskless (DVDC)** — capture pause → distributed peer exchange
  (each node ships its own VMs' data over its own NIC:
  ``per_node / B_node`` — "sped up by a factor roughly linear in the
  number of machines") → in-memory XOR at the parity nodes
  (``per_node / B_xor`` — "orders-of-magnitude faster than a disk
  write").

Following the paper's framing, the baseline is *traditional* full-image
checkpointing while DVDC rides the live-migration machinery with
incremental capture and delta compression (Section IV-C).  Both sides
are fully configurable for ablations (e.g. giving the baseline
incremental capture too).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ClusterModel",
    "MethodConfig",
    "PipelineCosts",
    "diskful_costs",
    "diskless_costs",
    "DISKFUL_PAPER",
    "DISKLESS_PAPER",
    "PAPER_CLUSTER",
]

GIB = float(1 << 30)


@dataclass(frozen=True)
class ClusterModel:
    """Static cluster parameters for the analytical model.

    Defaults reproduce the Fig. 5 configuration: 4 physical machines,
    12 VMs (Fig. 4 layout), GbE NICs, a single mid-range NAS, and a
    40 ms capture pause per VM.  ``vm_dirty_rate`` is the per-VM memory
    dirtying rate feeding incremental checkpoint sizes; the paper leaves
    it unspecified — see DESIGN.md §5 for the calibration.
    """

    n_nodes: int = 4
    vms_per_node: int = 3
    vm_memory_bytes: float = 1.0 * GIB
    vm_dirty_rate: float = 2e5  # bytes/s
    node_bandwidth: float = 125e6
    nas_bandwidth: float = 100e6
    nas_disk_bandwidth: float = 120e6
    memory_xor_bandwidth: float = 4e9
    capture_pause: float = 40e-3
    repair_time: float = 30.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.vms_per_node < 1:
            raise ValueError("n_nodes and vms_per_node must be >= 1")
        for name in (
            "vm_memory_bytes",
            "node_bandwidth",
            "nas_bandwidth",
            "nas_disk_bandwidth",
            "memory_xor_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.vm_dirty_rate < 0 or self.capture_pause < 0 or self.repair_time < 0:
            raise ValueError("rates/pauses must be >= 0")

    @property
    def n_vms(self) -> int:
        return self.n_nodes * self.vms_per_node

    def with_(self, **changes) -> "ClusterModel":
        """Functional update (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MethodConfig:
    """How a checkpoint method captures and moves data.

    ``incremental`` — per-VM data is ``min(dirty_rate·N, memory)``
    instead of the full image; ``compression_ratio`` scales wire/disk
    bytes (1.0 = none).  ``pipelined`` overlaps the stages (charging the
    max instead of the sum) for ablation of the store-and-forward
    assumption.
    """

    incremental: bool
    compression_ratio: float = 1.0
    pipelined: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.compression_ratio <= 1.0):
            raise ValueError(
                f"compression_ratio must be in (0, 1], got {self.compression_ratio}"
            )


#: The paper's implicit configurations (Section IV-C / V-B).
DISKFUL_PAPER = MethodConfig(incremental=False, compression_ratio=1.0)
DISKLESS_PAPER = MethodConfig(incremental=True, compression_ratio=0.5)
#: The Fig. 5 cluster.
PAPER_CLUSTER = ClusterModel()


@dataclass(frozen=True)
class PipelineCosts:
    """One checkpoint cycle's stage costs (seconds)."""

    pause: float
    network: float
    sink: float  # disk write (baseline) or XOR (diskless)
    pipelined: bool = False
    stage_bytes: float = 0.0

    @property
    def overhead(self) -> float:
        """T_ov for the expected-time model."""
        if self.pipelined:
            return self.pause + max(self.network, self.sink)
        return self.pause + self.network + self.sink

    @property
    def latency(self) -> float:
        """Start-to-usable; equals overhead in the serialized model."""
        return self.overhead


def _per_vm_bytes(cluster: ClusterModel, cfg: MethodConfig, interval: float) -> float:
    if cfg.incremental:
        raw = min(cluster.vm_dirty_rate * max(interval, 0.0), cluster.vm_memory_bytes)
    else:
        raw = cluster.vm_memory_bytes
    return raw


def _barrier_pause(cluster: ClusterModel) -> float:
    # captures on one node serialize; nodes proceed in parallel
    return cluster.capture_pause * cluster.vms_per_node


def diskful_costs(
    cluster: ClusterModel, interval: float, cfg: MethodConfig = DISKFUL_PAPER
) -> PipelineCosts:
    """Baseline: all VMs' data funnels through the NAS, then its disks."""
    raw = _per_vm_bytes(cluster, cfg, interval)
    wire = raw * cfg.compression_ratio
    total_wire = wire * cluster.n_vms
    # fan-in: NAS ingress is the bottleneck unless a single node's NIC is
    # slower than its fair share
    per_node_wire = wire * cluster.vms_per_node
    network = max(
        total_wire / cluster.nas_bandwidth,
        per_node_wire / cluster.node_bandwidth,
    )
    sink = total_wire / cluster.nas_disk_bandwidth
    return PipelineCosts(
        pause=_barrier_pause(cluster),
        network=network,
        sink=sink,
        pipelined=cfg.pipelined,
        stage_bytes=total_wire,
    )


def diskless_costs(
    cluster: ClusterModel, interval: float, cfg: MethodConfig = DISKLESS_PAPER
) -> PipelineCosts:
    """DVDC: balanced peer exchange, then distributed in-memory XOR.

    With the Fig. 4 rotation every node both sends its ``vms_per_node``
    images and receives the members of the groups it holds parity for —
    a balanced all-to-all whose completion is governed by the per-node
    NIC (full duplex: send and receive overlap).  XOR work is likewise
    split evenly: each node folds ``n_vms/n_nodes`` member images.
    """
    raw = _per_vm_bytes(cluster, cfg, interval)
    wire = raw * cfg.compression_ratio
    per_node_wire = wire * cluster.vms_per_node
    network = per_node_wire / cluster.node_bandwidth
    per_node_xor = raw * cluster.vms_per_node  # XOR runs on uncompressed data
    sink = per_node_xor / cluster.memory_xor_bandwidth
    return PipelineCosts(
        pause=_barrier_pause(cluster),
        network=network,
        sink=sink,
        pipelined=cfg.pipelined,
        stage_bytes=per_node_wire * cluster.n_nodes,
    )


def overhead_function(
    cluster: ClusterModel, method: str, cfg: MethodConfig | None = None
):
    """Return ``T_ov(N)`` for the named method ("diskful"/"diskless").

    The returned callable feeds :mod:`repro.model.optimal`'s interval
    search — overhead depends on the interval under incremental capture.
    """
    if method == "diskful":
        c = cfg or DISKFUL_PAPER
        return lambda interval: diskful_costs(cluster, interval, c).overhead
    if method == "diskless":
        c = cfg or DISKLESS_PAPER
        return lambda interval: diskless_costs(cluster, interval, c).overhead
    raise ValueError(f"unknown method {method!r}")
