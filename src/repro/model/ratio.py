"""Fig. 5 — the expected-time-ratio sweep.

Varies the checkpoint interval for both methods, computes the expected
time ratio (E[T]/T, 1.0 = fault-free ideal), and extracts each curve's
minimum — the "X marks" of the figure.  The headline numbers of Section
V-B derive from the two minima:

* *overhead ratio* of a method = its minimum ratio − 1;
* *reduction* of diskless over diskful =
  ``1 − E[T]_diskless / E[T]_diskful`` at the respective optima
  (the paper reports ≈18% with ≈1% diskless overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..failures.mtbf import PAPER_LAMBDA
from .optimal import OptimalInterval, find_optimal_interval
from .overhead import (
    DISKFUL_PAPER,
    DISKLESS_PAPER,
    ClusterModel,
    MethodConfig,
    PAPER_CLUSTER,
    overhead_function,
)
from .poisson import expected_time_with_overhead

__all__ = ["Fig5Series", "Fig5Result", "sweep_intervals", "fig5"]

#: 2 days — "typical of long-running HPC application" (Section V-B).
PAPER_JOB_SECONDS = 2.0 * 24 * 3600.0


@dataclass
class Fig5Series:
    """One curve of Fig. 5."""

    method: str
    intervals: np.ndarray
    ratios: np.ndarray
    optimum: OptimalInterval

    @property
    def min_ratio(self) -> float:
        return self.optimum.expected_ratio

    @property
    def overhead_ratio(self) -> float:
        """Fractional overhead versus the fault-free ideal at optimum."""
        return self.optimum.expected_ratio - 1.0

    def to_rows(self) -> list[tuple[float, float]]:
        """(interval, ratio) pairs for external plotting."""
        return list(zip(self.intervals.tolist(), self.ratios.tolist()))


@dataclass
class Fig5Result:
    """Both curves plus the headline comparisons."""

    diskless: Fig5Series
    diskful: Fig5Series
    cluster: ClusterModel = field(default_factory=ClusterModel)
    lam: float = PAPER_LAMBDA
    T: float = PAPER_JOB_SECONDS

    @property
    def reduction(self) -> float:
        """Fractional reduction in expected completion time of diskless
        over diskful, both at their optimal intervals."""
        return 1.0 - (
            self.diskless.optimum.expected_time / self.diskful.optimum.expected_time
        )

    def save_csv(self, path) -> None:
        """Write the two curves to CSV (interval, diskless, diskful) —
        for users who want to replot Fig. 5 with their own tools.

        The two series share the interval grid when produced by
        :func:`fig5`; rows are emitted on the diskless grid with the
        diskful ratio interpolated if grids differ.
        """
        import csv

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["interval_seconds", "diskless_ratio", "diskful_ratio"])
            same_grid = (
                len(self.diskless.intervals) == len(self.diskful.intervals)
                and bool(np.allclose(self.diskless.intervals, self.diskful.intervals))
            )
            if same_grid:
                duf = self.diskful.ratios
            else:
                duf = np.interp(
                    self.diskless.intervals,
                    self.diskful.intervals,
                    self.diskful.ratios,
                )
            for x, a, b in zip(self.diskless.intervals, self.diskless.ratios, duf):
                w.writerow([f"{x:.6g}", f"{a:.8g}", f"{b:.8g}"])
            w.writerow([])
            w.writerow(["optimum_method", "interval", "ratio"])
            w.writerow([
                "diskless",
                f"{self.diskless.optimum.interval:.6g}",
                f"{self.diskless.min_ratio:.8g}",
            ])
            w.writerow([
                "diskful",
                f"{self.diskful.optimum.interval:.6g}",
                f"{self.diskful.min_ratio:.8g}",
            ])


def sweep_intervals(
    lam: float,
    T: float,
    cluster: ClusterModel,
    method: str,
    cfg: MethodConfig | None = None,
    T_r: float | None = None,
    intervals: np.ndarray | None = None,
) -> Fig5Series:
    """Expected-time-ratio curve for one method over an interval grid."""
    ov = overhead_function(cluster, method, cfg)
    repair = cluster.repair_time if T_r is None else T_r
    if intervals is None:
        intervals = np.logspace(0, np.log10(T / 2.0), 240)
    ratios = np.array(
        [
            expected_time_with_overhead(lam, T, float(N), ov(float(N)), repair) / T
            for N in intervals
        ]
    )
    optimum = find_optimal_interval(
        lam, T, ov, T_r=repair, bounds=(float(intervals[0]), float(intervals[-1]))
    )
    return Fig5Series(
        method=method, intervals=np.asarray(intervals), ratios=ratios, optimum=optimum
    )


def fig5(
    lam: float = PAPER_LAMBDA,
    T: float = PAPER_JOB_SECONDS,
    cluster: ClusterModel = PAPER_CLUSTER,
    diskful_cfg: MethodConfig = DISKFUL_PAPER,
    diskless_cfg: MethodConfig = DISKLESS_PAPER,
    intervals: np.ndarray | None = None,
) -> Fig5Result:
    """Reproduce Fig. 5 under the paper's operating point.

    Defaults: cluster MTBF 3 h (λ = 9.26e-5 /s), job length 2 days,
    4 physical machines, 12 VMs, 40 ms base capture pause.
    """
    diskful = sweep_intervals(lam, T, cluster, "diskful", diskful_cfg, intervals=intervals)
    diskless = sweep_intervals(
        lam, T, cluster, "diskless", diskless_cfg, intervals=intervals
    )
    return Fig5Result(diskless=diskless, diskful=diskful, cluster=cluster, lam=lam, T=T)
