"""Sensitivity of the Section V model to the Poisson assumption.

The paper concedes (Section V): "we can imagine cases where the Poisson
assumption may not hold even on single computers (cf. the 'bathtub
curve' model...)" but adopts it for tractability.  This module measures
what that costs: a renewal-process Monte-Carlo that runs the identical
checkpointed-job game with *arbitrary* inter-failure distributions
(Weibull, lognormal, bathtub — Schroeder & Gibson's HPC logs fit
Weibull with shape ≈ 0.7), compared against the exponential closed
form at the same MTBF.

Semantics: failures form a renewal process — after each failure (and
its repair) the inter-failure clock redraws from the distribution.
Between failures the clock keeps running across segment boundaries
(unlike the memoryless closed form, where each segment independently
"re-arms"; for the exponential distribution the two views coincide,
which the tests verify).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..failures.distributions import FailureDistribution
from .poisson import expected_time_with_overhead

__all__ = [
    "simulate_renewal_completion_times",
    "SensitivityResult",
    "poisson_sensitivity",
]


def simulate_renewal_completion_times(
    rng: np.random.Generator,
    dist: FailureDistribution,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 1000,
    final_checkpoint: bool = True,
) -> np.ndarray:
    """Completion times of a checkpointed job under renewal failures.

    Identical game to
    :func:`repro.model.montecarlo.simulate_completion_times`, but the
    time-to-next-failure is drawn from ``dist`` and persists across
    segments (a true renewal process rather than per-segment memoryless
    exposure).
    """
    if T <= 0:
        raise ValueError("T must be > 0")
    if N is not None and N <= 0:
        raise ValueError("N must be > 0 (or None)")
    if T_ov < 0 or T_r < 0:
        raise ValueError("T_ov and T_r must be >= 0")
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")

    if N is None:
        segments = [(T, 0.0)]
    else:
        n_full = int(math.floor(T / N))
        rem = T - n_full * N
        segs = [N] * n_full + ([rem] if rem > 1e-12 else [])
        segments = [(s, T_ov) for s in segs]
        if segments and not final_checkpoint:
            segments[-1] = (segments[-1][0], 0.0)

    totals = np.empty(n_runs)
    # draw failure times in batches per run to amortize sampling cost
    for run in range(n_runs):
        clock = 0.0  # wall time
        until_failure = dist.sample(rng)
        idx = 0
        while idx < len(segments):
            seg, ov = segments[idx]
            exposure = seg + ov
            if until_failure > exposure:
                # segment completes
                clock += exposure
                until_failure -= exposure
                idx += 1
            else:
                # failure mid-segment: lose the partial exposure, repair,
                # re-arm the failure clock (renewal), retry the segment
                clock += until_failure + T_r
                until_failure = dist.sample(rng)
        totals[run] = clock
    return totals


@dataclass(frozen=True)
class SensitivityResult:
    """Exponential closed form vs renewal Monte-Carlo for one dist."""

    label: str
    mtbf: float
    analytic_exponential: float
    measured_mean: float
    measured_stderr: float

    @property
    def relative_error(self) -> float:
        """How far reality (non-Poisson) lands from the Poisson model."""
        return (self.measured_mean - self.analytic_exponential) / (
            self.analytic_exponential
        )


def poisson_sensitivity(
    rng: np.random.Generator,
    dist: FailureDistribution,
    T: float,
    N: float,
    T_ov: float,
    T_r: float = 0.0,
    n_runs: int = 2000,
    label: str | None = None,
) -> SensitivityResult:
    """Compare ``dist`` (same MTBF) against the exponential closed form."""
    mtbf = dist.mean()
    analytic = expected_time_with_overhead(1.0 / mtbf, T, N, T_ov, T_r)
    samples = simulate_renewal_completion_times(
        rng, dist, T, N, T_ov, T_r, n_runs
    )
    return SensitivityResult(
        label=label or type(dist).__name__,
        mtbf=mtbf,
        analytic_exponential=analytic,
        measured_mean=float(samples.mean()),
        measured_stderr=float(samples.std(ddof=1) / math.sqrt(n_runs)),
    )
