"""Section V's analytical model of checkpointed execution time.

All formulas assume a Poisson failure process with rate ``λ`` (1/MTBF)
and the "restarting progress bar" semantics the paper describes: a
failure during a segment discards that segment's progress; completed
segments (checkpointed work) are never lost.

The building blocks:

* geometric retry count — a segment of effective length ``s`` succeeds
  with probability ``e^{-λs}``, so the expected number of failed
  attempts is ``E[F] = e^{λs} − 1``;
* truncated mean — each failed attempt wastes
  ``E[T_fail | T_fail < s] = (1 − (λs + 1)e^{-λs}) / (λ (1 − e^{-λs}))``.

The paper's printed equations contain three typographical slips (see
DESIGN.md §4); the ``expected_*`` functions below implement the
dimensionally consistent forms, the ``paper_literal_*`` functions
reproduce the printed ones verbatim for comparison, and the test suite
pins the corrected forms to Monte-Carlo simulation.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_failures",
    "truncated_mean_failure_time",
    "expected_time_no_checkpoint",
    "expected_time_checkpointed",
    "expected_time_with_overhead",
    "expected_time_ratio",
    "paper_literal_eq1",
    "paper_literal_eq3",
    "paper_literal_overhead",
]


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if not value > 0:
            raise ValueError(f"{name} must be > 0, got {value}")


def _check_nonnegative(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")


def expected_failures(lam: float, span: float) -> float:
    """E[F]: expected failed attempts before a span completes fault-free.

    Attempts are i.i.d.; success probability ``e^{-λ·span}`` makes the
    failure count geometric with mean ``e^{λ·span} − 1``.
    """
    _check_positive(lam=lam)
    _check_nonnegative(span=span)
    try:
        return math.expm1(lam * span)
    except OverflowError:
        # λ·span beyond float range: the job effectively never finishes
        return math.inf


def truncated_mean_failure_time(lam: float, span: float) -> float:
    """E[T_fail | T_fail < span] for an exponential(λ) failure time."""
    _check_positive(lam=lam, span=span)
    x = lam * span
    denom = -math.expm1(-x)  # 1 - e^{-x}
    numer = 1.0 - (x + 1.0) * math.exp(-x)
    return numer / (lam * denom)


def expected_time_no_checkpoint(lam: float, T: float) -> float:
    """Eq. (1): expected completion time with no checkpointing.

    ``E[T_nochk] = E[F] · E[T_fail | T_fail < T] + T``.
    """
    _check_positive(lam=lam, T=T)
    return expected_failures(lam, T) * truncated_mean_failure_time(lam, T) + T


def expected_time_checkpointed(lam: float, T: float, N: float) -> float:
    """Eq. (2) (with the corrected per-segment rate): zero-cost
    checkpoints every ``N`` seconds split the job into ``T/N`` segments,
    each behaving like an uncheckpointed job of length ``N``.
    """
    _check_positive(lam=lam, T=T, N=N)
    per_segment = (
        expected_failures(lam, N) * truncated_mean_failure_time(lam, N) + N
    )
    return per_segment * (T / N)


def expected_time_with_overhead(
    lam: float, T: float, N: float, T_ov: float, T_r: float = 0.0
) -> float:
    """The overhead-aware model (corrected form).

    Each segment exposes the job to failure for ``s = N + T_ov`` seconds
    (work plus checkpoint); every failure additionally costs the repair
    time ``T_r``.  There are ``T/N`` segments::

        E = (E[F_s] · (E[T_fail | T_fail < s] + T_r) + s) · T / N

    The printed equation multiplies by ``T_ov/N`` and uses a negative
    ``E[F]`` — see :func:`paper_literal_overhead`.
    """
    _check_positive(lam=lam, T=T, N=N)
    _check_nonnegative(T_ov=T_ov, T_r=T_r)
    s = N + T_ov
    per_segment = (
        expected_failures(lam, s)
        * (truncated_mean_failure_time(lam, s) + T_r)
        + s
    )
    return per_segment * (T / N)


def expected_time_ratio(
    lam: float, T: float, N: float, T_ov: float, T_r: float = 0.0
) -> float:
    """E[T_chk;ov] / T — the Y axis of Fig. 5 (1.0 = fault-free ideal)."""
    return expected_time_with_overhead(lam, T, N, T_ov, T_r) / T


# ----------------------------------------------------------------------
# verbatim renderings of the printed equations (for errata comparison)
# ----------------------------------------------------------------------
def paper_literal_eq1(lam: float, T: float) -> float:
    """Eq. (1) exactly as printed.

    Algebraically identical to :func:`expected_time_no_checkpoint` —
    the printed grouping ``(e^{λT}−1)/(1−e^{−λT}) · (1−(λT+1)e^{−λT})/λ``
    equals ``E[F] · E[T_fail|T_fail<T]``.
    """
    _check_positive(lam=lam, T=T)
    x = lam * T
    term = (math.expm1(x) / (-math.expm1(-x))) * (
        (1.0 - (x + 1.0) * math.exp(-x)) / lam
    )
    return term + T


def paper_literal_eq3(lam: float, T: float, N: float) -> float:
    """Eq. (3) exactly as printed — the typo keeps ``λT`` inside the
    failure terms where Eq. (2)'s text requires ``λN``.  Kept for
    errata demonstrations; do not use for analysis."""
    _check_positive(lam=lam, T=T, N=N)
    x = lam * T
    per_segment = (math.expm1(x) / (-math.expm1(-x))) * (
        (1.0 - (x + 1.0) * math.exp(-x)) / lam
    ) + N
    return per_segment * (T / N)


def paper_literal_overhead(
    lam: float, T: float, N: float, T_ov: float, T_r: float = 0.0
) -> float:
    """The overhead equation exactly as printed: ``E[F]`` appears as
    ``e^{−λ(N+T_ov)} − 1`` (negative) and the multiplier as ``T_ov/N``.
    Kept for errata demonstrations; do not use for analysis."""
    _check_positive(lam=lam, T=T, N=N)
    _check_nonnegative(T_ov=T_ov, T_r=T_r)
    s = N + T_ov
    ef = math.exp(-lam * s) - 1.0
    etf = (1.0 - math.exp(-lam * s) * (lam * s + 1.0)) / (
        lam - lam * math.exp(-lam * s)
    )
    return (ef * (etf + T_r) + s) * (T_ov / N)
