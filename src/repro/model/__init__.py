"""Section V's analytical model: equations, overhead pipelines, optimal
intervals, the Fig. 5 sweep, and Monte-Carlo corroboration."""

from .memory import SCHEMES, MemoryFootprint, scheme_footprint
from .montecarlo import (
    MonteCarloEstimate,
    estimate_expected_time,
    simulate_completion_times,
)
from .optimal import (
    OptimalInterval,
    daly_interval,
    find_optimal_interval,
    young_interval,
)
from .overhead import (
    DISKFUL_PAPER,
    DISKLESS_PAPER,
    PAPER_CLUSTER,
    ClusterModel,
    MethodConfig,
    PipelineCosts,
    diskful_costs,
    diskless_costs,
    overhead_function,
)
from .sensitivity import (
    SensitivityResult,
    poisson_sensitivity,
    simulate_renewal_completion_times,
)
from .reliability import (
    ReliabilityComparison,
    compare_codes,
    fatal_probability_per_failure,
    job_survival_probability,
    mttdl,
)
from .poisson import (
    expected_failures,
    expected_time_checkpointed,
    expected_time_no_checkpoint,
    expected_time_ratio,
    expected_time_with_overhead,
    paper_literal_eq1,
    paper_literal_eq3,
    paper_literal_overhead,
    truncated_mean_failure_time,
)
from .ratio import PAPER_JOB_SECONDS, Fig5Result, Fig5Series, fig5, sweep_intervals

__all__ = [
    "expected_failures",
    "truncated_mean_failure_time",
    "expected_time_no_checkpoint",
    "expected_time_checkpointed",
    "expected_time_with_overhead",
    "expected_time_ratio",
    "paper_literal_eq1",
    "paper_literal_eq3",
    "paper_literal_overhead",
    "ClusterModel",
    "MethodConfig",
    "PipelineCosts",
    "diskful_costs",
    "diskless_costs",
    "overhead_function",
    "DISKFUL_PAPER",
    "DISKLESS_PAPER",
    "PAPER_CLUSTER",
    "young_interval",
    "daly_interval",
    "OptimalInterval",
    "find_optimal_interval",
    "Fig5Series",
    "Fig5Result",
    "fig5",
    "sweep_intervals",
    "PAPER_JOB_SECONDS",
    "simulate_completion_times",
    "estimate_expected_time",
    "MonteCarloEstimate",
    "MemoryFootprint",
    "scheme_footprint",
    "SCHEMES",
    "fatal_probability_per_failure",
    "mttdl",
    "job_survival_probability",
    "compare_codes",
    "ReliabilityComparison",
    "simulate_renewal_completion_times",
    "poisson_sensitivity",
    "SensitivityResult",
]
