"""Monte-Carlo corroboration of the Section V equations.

The conclusion claims "models to corroborate our equations"; this module
provides them.  :func:`simulate_completion_times` plays the segment
game directly — draw exponential failure times, retry segments, pay
overhead and repair — with no reference to the closed forms, so the
agreement measured in the tests and the VAL-MC bench is evidence the
corrected equations are right (and the printed typos wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..sim.rng import derive_seed

__all__ = [
    "simulate_completion_times",
    "MonteCarloEstimate",
    "estimate_expected_time",
    "chunk_sizes",
    "chunk_seed",
    "simulate_completion_times_chunk",
    "simulate_completion_times_chunked",
    "chunk_moments",
    "estimate_from_moments",
    "estimate_expected_time_chunked",
    "window_loss_probability",
    "estimate_window_loss",
]


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Sample mean with a normal-approximation confidence interval."""

    mean: float
    std_error: float
    n_runs: int

    def ci(self, z: float = 1.96) -> tuple[float, float]:
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)

    def within(self, value: float, z: float = 3.0) -> bool:
        lo, hi = self.ci(z)
        return lo <= value <= hi


def simulate_completion_times(
    rng: np.random.Generator,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 1000,
    final_checkpoint: bool = True,
) -> np.ndarray:
    """Simulate ``n_runs`` job executions; returns completion times.

    ``N=None`` means no checkpointing (a failure restarts the whole
    job).  Otherwise the job is ``ceil(T/N)`` segments; the final
    segment may be shorter.  A segment must survive its work *plus* the
    checkpoint overhead; a failure during either wastes the elapsed
    exposure and adds the repair time.

    ``final_checkpoint=True`` charges ``T_ov`` on the last segment too,
    matching the closed form's ``T/N`` checkpoints exactly (use it when
    validating the equations); ``False`` models a real job, which does
    not checkpoint after its final segment.

    The loop is vectorized per segment across runs: all runs' attempts
    for a segment are drawn in batch until every run completes it.
    """
    if lam <= 0 or T <= 0:
        raise ValueError("lam and T must be > 0")
    if N is not None and N <= 0:
        raise ValueError("N must be > 0 (or None)")
    if T_ov < 0 or T_r < 0:
        raise ValueError("T_ov and T_r must be >= 0")
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")

    if N is None:
        segments = [T]
        overheads = [0.0]
    else:
        n_full = int(math.floor(T / N))
        rem = T - n_full * N
        segments = [N] * n_full + ([rem] if rem > 1e-12 else [])
        overheads = [T_ov] * len(segments)
        if overheads and not final_checkpoint:
            overheads[-1] = 0.0

    totals = np.zeros(n_runs)
    for seg, ov in zip(segments, overheads):
        exposure = seg + ov
        pending = np.arange(n_runs)
        # accumulate failures until all runs pass this segment
        while pending.size:
            draws = rng.exponential(1.0 / lam, size=pending.size)
            failed = draws < exposure
            totals[pending[failed]] += draws[failed] + T_r
            totals[pending[~failed]] += exposure
            pending = pending[failed]
    return totals


def estimate_expected_time(
    rng: np.random.Generator,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 2000,
    final_checkpoint: bool = True,
) -> MonteCarloEstimate:
    """Mean completion time with standard error."""
    samples = simulate_completion_times(
        rng, lam, T, N, T_ov, T_r, n_runs, final_checkpoint
    )
    return MonteCarloEstimate(
        mean=float(samples.mean()),
        std_error=float(samples.std(ddof=1) / math.sqrt(n_runs)),
        n_runs=n_runs,
    )


# ---------------------------------------------------------------------------
# Chunked evaluation — the unit the campaign runner parallelizes.
#
# A large n_runs is split into fixed-size chunks; every chunk draws from
# its own Generator seeded by ``derive_seed(master_seed, "mc-chunk/i")``.
# Chunk results therefore depend only on (master_seed, chunk_index,
# chunk_runs, model params) — never on which process computed them or in
# what order — so a parallel fan-out is bit-identical to the serial loop.

#: Default runs per chunk; small enough to load-balance a pool, large
#: enough that the per-segment vectorization still pays off.
DEFAULT_CHUNK_RUNS = 512


def chunk_sizes(n_runs: int, chunk_runs: int = DEFAULT_CHUNK_RUNS) -> list[int]:
    """Split ``n_runs`` into chunk lengths (last chunk may be short)."""
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    if chunk_runs < 1:
        raise ValueError("chunk_runs must be >= 1")
    full, rem = divmod(n_runs, chunk_runs)
    return [chunk_runs] * full + ([rem] if rem else [])


def chunk_seed(master_seed: int, chunk_index: int) -> int:
    """The derived seed of one Monte-Carlo chunk."""
    return derive_seed(master_seed, f"mc-chunk/{chunk_index}")


def simulate_completion_times_chunk(
    master_seed: int,
    chunk_index: int,
    chunk_runs: int,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    final_checkpoint: bool = True,
) -> np.ndarray:
    """One independently seeded chunk of :func:`simulate_completion_times`.

    Calling this for each chunk of :func:`chunk_sizes` — in any order,
    from any process — and concatenating reproduces
    :func:`simulate_completion_times_chunked` exactly.
    """
    rng = np.random.default_rng(chunk_seed(master_seed, chunk_index))
    return simulate_completion_times(
        rng, lam, T, N, T_ov, T_r, chunk_runs, final_checkpoint
    )


def simulate_completion_times_chunked(
    master_seed: int,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 2000,
    chunk_runs: int = DEFAULT_CHUNK_RUNS,
    final_checkpoint: bool = True,
    probe=None,
) -> np.ndarray:
    """All chunks evaluated serially and concatenated in index order.

    ``probe`` (a :class:`repro.telemetry.Probe`) records per-chunk
    timings and run counts; the guard below is the standard disabled-path
    discipline, so passing a disabled probe — or none — costs one
    attribute check per chunk (the telemetry overhead bench measures
    exactly this call).
    """
    import time as _time

    parts = []
    for i, size in enumerate(chunk_sizes(n_runs, chunk_runs)):
        t0 = _time.perf_counter()
        parts.append(simulate_completion_times_chunk(
            master_seed, i, size, lam, T, N, T_ov, T_r, final_checkpoint
        ))
        if probe is not None and probe.enabled:
            probe.observe(
                "repro_mc_chunk_seconds", _time.perf_counter() - t0,
                help="Wall time of one Monte-Carlo chunk",
            )
            probe.count(
                "repro_mc_runs_total", size,
                help="Monte-Carlo job executions simulated",
            )
    return np.concatenate(parts)


def chunk_moments(samples: np.ndarray) -> dict:
    """Sufficient statistics of one chunk — JSON-able, mergeable."""
    return {
        "n": int(samples.size),
        "sum": float(samples.sum()),
        "sumsq": float(np.square(samples).sum()),
    }


def estimate_from_moments(moments: Iterable[dict]) -> MonteCarloEstimate:
    """Merge per-chunk moments into one estimate.

    Accumulation is in iteration order, so feed chunks in index order to
    keep the result bit-identical across serial and parallel campaigns.
    """
    n, total, totalsq = 0, 0.0, 0.0
    for m in moments:
        n += m["n"]
        total += m["sum"]
        totalsq += m["sumsq"]
    if n < 1:
        raise ValueError("no chunks to merge")
    mean = total / n
    if n > 1:
        var = max(0.0, (totalsq - n * mean * mean) / (n - 1))
        std_error = math.sqrt(var / n)
    else:
        std_error = float("inf")
    return MonteCarloEstimate(mean=mean, std_error=std_error, n_runs=n)


# ---------------------------------------------------------------------------
# Window of vulnerability — what self-healing buys.
#
# After a node failure, one erasure of the coding scheme's tolerance is
# spent until the cluster is re-protected (recovery + re-encode, or a
# spare pulled from the pool).  During that window, failures exceeding
# the scheme's remaining tolerance are unrecoverable — for single-parity
# XOR, any second failure on any *other* node.  The self-healer measures the realized window
# (the ``repro_degraded_window_seconds`` histogram); these helpers turn
# a window length into a loss probability, so shrinking the window via
# spares translates directly into availability.


def window_loss_probability(
    lam: float, n_nodes: int, window: float, tolerance: int = 1
) -> float:
    """P(unrecoverable failures strike during the vulnerability window).

    A coding scheme of erasure ``tolerance`` ``m`` has one erasure spent
    by the failure that opened the window, so data survives as long as
    fewer than ``m`` of the ``n_nodes - 1`` survivors fail before
    re-protection.  Each survivor independently fails inside the window
    with probability ``q = 1 - e^{-\\lambda W}``, so

    .. math:: P_{loss} = P(\\mathrm{Binom}(n-1, q) \\ge m)

    which for ``m = 1`` (XOR single parity) collapses to the pooled
    Poisson form ``1 - e^{-\\lambda (n-1) W}``.
    """
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    if tolerance < 1:
        raise ValueError(f"tolerance must be >= 1, got {tolerance}")
    n = n_nodes - 1
    if tolerance == 1:
        return -math.expm1(-lam * n * window)
    if tolerance > n:
        return 0.0  # fewer survivors than the code can lose
    q = -math.expm1(-lam * window)
    return float(sum(
        math.comb(n, i) * q**i * (1.0 - q) ** (n - i)
        for i in range(tolerance, n + 1)
    ))


def estimate_window_loss(
    rng: np.random.Generator,
    lam: float,
    n_nodes: int,
    window: float,
    n_runs: int = 2000,
    tolerance: int = 1,
) -> MonteCarloEstimate:
    """Monte-Carlo corroboration of :func:`window_loss_probability`.

    Each run draws the ``n_nodes - 1`` survivors' next failure times and
    scores a loss when the ``tolerance``-th earliest lands inside the
    window — no use of the closed form, so agreement is evidence, not
    tautology.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    # validate the full parameter set before drawing
    window_loss_probability(lam, n_nodes, window, tolerance=tolerance)
    if tolerance > n_nodes - 1:
        return MonteCarloEstimate(mean=0.0, std_error=0.0, n_runs=n_runs)
    draws = rng.exponential(1.0 / lam, size=(n_runs, n_nodes - 1))
    if tolerance == 1:
        kth = draws.min(axis=1)
    else:
        kth = np.sort(draws, axis=1)[:, tolerance - 1]
    p = float((kth < window).mean())
    std_error = math.sqrt(max(p * (1.0 - p), 1e-12) / n_runs)
    return MonteCarloEstimate(mean=p, std_error=std_error, n_runs=n_runs)


def geo_window_loss_probability(
    lam: float,
    n_nodes: int,
    window: float,
    tolerance: int = 1,
    site_rate: float = 0.0,
    n_sites: int = 0,
    site_cost: int = 1,
) -> float:
    """Window-loss probability with domain-correlated failure terms.

    Extends :func:`window_loss_probability`: on top of the
    ``n_nodes - 1`` surviving nodes' independent failures, each of
    ``n_sites`` sites fails as a unit at rate ``site_rate``, and one
    site outage erases ``site_cost`` elements of the worst-placed group
    (``1`` under a valid geo-spread layout, up to the whole group under
    ``local-parity`` — :func:`worst_domain_cost` measures a layout).
    With independent per-site processes,

    .. math::

        P_{loss} = P(X + c \\cdot D \\ge m), \\quad
        X \\sim \\mathrm{Binom}(n-1, 1 - e^{-\\lambda W}), \\
        D \\sim \\mathrm{Binom}(s, 1 - e^{-\\lambda_s W})

    ``site_rate = 0`` (or ``n_sites = 0``) reduces exactly to the
    uncorrelated form.
    """
    base_validate = window_loss_probability(lam, n_nodes, window, tolerance)
    if n_sites < 0:
        raise ValueError(f"n_sites must be >= 0, got {n_sites}")
    if site_rate < 0:
        raise ValueError(f"site_rate must be >= 0, got {site_rate}")
    if site_cost < 1:
        raise ValueError(f"site_cost must be >= 1, got {site_cost}")
    if site_rate == 0.0 or n_sites == 0:
        return base_validate
    n = n_nodes - 1
    q = -math.expm1(-lam * window)
    qs = -math.expm1(-site_rate * window)
    p_loss = 0.0
    for d in range(n_sites + 1):
        p_d = math.comb(n_sites, d) * qs**d * (1.0 - qs) ** (n_sites - d)
        need = tolerance - site_cost * d  # node failures still required
        if need <= 0:
            p_x = 1.0
        elif need > n:
            p_x = 0.0
        else:
            p_x = sum(
                math.comb(n, i) * q**i * (1.0 - q) ** (n - i)
                for i in range(need, n + 1)
            )
        p_loss += p_d * p_x
    return float(min(1.0, p_loss))


def estimate_geo_window_loss(
    rng: np.random.Generator,
    lam: float,
    n_nodes: int,
    window: float,
    n_runs: int = 2000,
    tolerance: int = 1,
    site_rate: float = 0.0,
    n_sites: int = 0,
    site_cost: int = 1,
) -> MonteCarloEstimate:
    """Monte-Carlo corroboration of :func:`geo_window_loss_probability`.

    Each run draws the survivors' and the sites' next failure times and
    scores a loss when node failures plus ``site_cost`` × site outages
    inside the window reach the tolerance — event counting only, no use
    of the closed form, so agreement is evidence, not tautology.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    geo_window_loss_probability(
        lam, n_nodes, window, tolerance,
        site_rate=site_rate, n_sites=n_sites, site_cost=site_cost,
    )
    node_draws = rng.exponential(1.0 / lam, size=(n_runs, n_nodes - 1))
    hits = (node_draws < window).sum(axis=1)
    if site_rate > 0.0 and n_sites > 0:
        site_draws = rng.exponential(1.0 / site_rate, size=(n_runs, n_sites))
        hits = hits + site_cost * (site_draws < window).sum(axis=1)
    p = float((hits >= tolerance).mean())
    std_error = math.sqrt(max(p * (1.0 - p), 1e-12) / n_runs)
    return MonteCarloEstimate(mean=p, std_error=std_error, n_runs=n_runs)


def worst_domain_cost(layout, cluster, domains) -> int:
    """Largest number of one group's elements (members + parity shards)
    co-resident in a single failure domain — the ``site_cost`` a domain
    outage charges :func:`geo_window_loss_probability`.

    1 for a valid geo-spread layout; typically ≥ 2 under ``local-parity``
    on a multi-site cluster.
    """
    worst = 0
    for g in layout.groups:
        per_dom: dict[int, int] = {}
        for vm_id in g.member_vm_ids:
            node = cluster.vm(vm_id).node_id
            if node is None:
                continue
            d = domains.domain_of(node)
            per_dom[d] = per_dom.get(d, 0) + 1
        for p in g.parity_nodes:
            d = domains.domain_of(p)
            per_dom[d] = per_dom.get(d, 0) + 1
        if per_dom:
            worst = max(worst, max(per_dom.values()))
    return worst


def estimate_expected_time_chunked(
    master_seed: int,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 2000,
    chunk_runs: int = DEFAULT_CHUNK_RUNS,
    final_checkpoint: bool = True,
) -> MonteCarloEstimate:
    """Chunk-seeded counterpart of :func:`estimate_expected_time`.

    Aggregates through :func:`estimate_from_moments` — the same merge the
    campaign layer performs — so CLI ``--jobs 1`` and ``--jobs N`` agree
    to the bit.
    """
    sizes = chunk_sizes(n_runs, chunk_runs)
    moments = (
        chunk_moments(
            simulate_completion_times_chunk(
                master_seed, i, size, lam, T, N, T_ov, T_r, final_checkpoint
            )
        )
        for i, size in enumerate(sizes)
    )
    return estimate_from_moments(moments)
