"""Monte-Carlo corroboration of the Section V equations.

The conclusion claims "models to corroborate our equations"; this module
provides them.  :func:`simulate_completion_times` plays the segment
game directly — draw exponential failure times, retry segments, pay
overhead and repair — with no reference to the closed forms, so the
agreement measured in the tests and the VAL-MC bench is evidence the
corrected equations are right (and the printed typos wrong).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "simulate_completion_times",
    "MonteCarloEstimate",
    "estimate_expected_time",
]


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Sample mean with a normal-approximation confidence interval."""

    mean: float
    std_error: float
    n_runs: int

    def ci(self, z: float = 1.96) -> tuple[float, float]:
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)

    def within(self, value: float, z: float = 3.0) -> bool:
        lo, hi = self.ci(z)
        return lo <= value <= hi


def simulate_completion_times(
    rng: np.random.Generator,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 1000,
    final_checkpoint: bool = True,
) -> np.ndarray:
    """Simulate ``n_runs`` job executions; returns completion times.

    ``N=None`` means no checkpointing (a failure restarts the whole
    job).  Otherwise the job is ``ceil(T/N)`` segments; the final
    segment may be shorter.  A segment must survive its work *plus* the
    checkpoint overhead; a failure during either wastes the elapsed
    exposure and adds the repair time.

    ``final_checkpoint=True`` charges ``T_ov`` on the last segment too,
    matching the closed form's ``T/N`` checkpoints exactly (use it when
    validating the equations); ``False`` models a real job, which does
    not checkpoint after its final segment.

    The loop is vectorized per segment across runs: all runs' attempts
    for a segment are drawn in batch until every run completes it.
    """
    if lam <= 0 or T <= 0:
        raise ValueError("lam and T must be > 0")
    if N is not None and N <= 0:
        raise ValueError("N must be > 0 (or None)")
    if T_ov < 0 or T_r < 0:
        raise ValueError("T_ov and T_r must be >= 0")
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")

    if N is None:
        segments = [T]
        overheads = [0.0]
    else:
        n_full = int(math.floor(T / N))
        rem = T - n_full * N
        segments = [N] * n_full + ([rem] if rem > 1e-12 else [])
        overheads = [T_ov] * len(segments)
        if overheads and not final_checkpoint:
            overheads[-1] = 0.0

    totals = np.zeros(n_runs)
    for seg, ov in zip(segments, overheads):
        exposure = seg + ov
        pending = np.arange(n_runs)
        # accumulate failures until all runs pass this segment
        while pending.size:
            draws = rng.exponential(1.0 / lam, size=pending.size)
            failed = draws < exposure
            totals[pending[failed]] += draws[failed] + T_r
            totals[pending[~failed]] += exposure
            pending = pending[failed]
    return totals


def estimate_expected_time(
    rng: np.random.Generator,
    lam: float,
    T: float,
    N: float | None,
    T_ov: float = 0.0,
    T_r: float = 0.0,
    n_runs: int = 2000,
    final_checkpoint: bool = True,
) -> MonteCarloEstimate:
    """Mean completion time with standard error."""
    samples = simulate_completion_times(
        rng, lam, T, N, T_ov, T_r, n_runs, final_checkpoint
    )
    return MonteCarloEstimate(
        mean=float(samples.mean()),
        std_error=float(samples.std(ddof=1) / math.sqrt(n_runs)),
        n_runs=n_runs,
    )
