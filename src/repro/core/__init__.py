"""The paper's contribution: DVDC — parity codes, orthogonal RAID
groups over VMs, the diskless checkpoint protocol, and recovery."""

from .architectures import checkpoint_node, dvdc, first_shot
from .double_parity import (
    DoubleParityCheckpointer,
    DoubleParityGroup,
    DoubleParityLayout,
    build_double_parity_layout,
)
from .dvdc import DEFAULT_XOR_BANDWIDTH, DisklessCheckpointer, DisklessCycleResult
from .groups import (
    GroupLayout,
    LayoutError,
    RaidGroup,
    build_orthogonal_layout,
    layout_checkpoint_node,
    layout_dvdc,
    layout_firstshot,
)
from .parity import ParityCodeError, RDPCode, XorCode, smallest_prime_at_least
from .placement import (
    LayoutReport,
    group_losses_if_node_fails,
    rebalance_after_migration,
    survives_single_node_failure,
    tolerable_node_failure_sets,
    validate_layout,
)
from .recovery import (
    DisklessRecoveryReport,
    choose_parity_node,
    choose_restore_node,
)

__all__ = [
    "XorCode",
    "RDPCode",
    "ParityCodeError",
    "smallest_prime_at_least",
    "RaidGroup",
    "GroupLayout",
    "LayoutError",
    "build_orthogonal_layout",
    "layout_firstshot",
    "layout_checkpoint_node",
    "layout_dvdc",
    "validate_layout",
    "LayoutReport",
    "group_losses_if_node_fails",
    "survives_single_node_failure",
    "tolerable_node_failure_sets",
    "rebalance_after_migration",
    "DisklessCheckpointer",
    "DisklessCycleResult",
    "DEFAULT_XOR_BANDWIDTH",
    "DisklessRecoveryReport",
    "choose_restore_node",
    "choose_parity_node",
    "first_shot",
    "checkpoint_node",
    "dvdc",
    "DoubleParityGroup",
    "DoubleParityLayout",
    "build_double_parity_layout",
    "DoubleParityCheckpointer",
]
