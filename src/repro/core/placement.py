"""Layout validation and failure-tolerance analysis.

These checks are the executable form of Fig. 2's argument: grid the
RAID groups across controllers (nodes) so that any single controller
failure destroys at most one element per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import VirtualCluster
from .groups import GroupLayout, LayoutError, RaidGroup, build_orthogonal_layout

__all__ = [
    "validate_layout",
    "group_losses_if_node_fails",
    "survives_single_node_failure",
    "tolerable_node_failure_sets",
    "rebalance_after_migration",
    "LayoutReport",
]


@dataclass
class LayoutReport:
    """Result of :func:`validate_layout`."""

    ok: bool
    errors: list[str] = field(default_factory=list)
    parity_load: dict[int, int] = field(default_factory=dict)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise LayoutError("; ".join(self.errors))


def validate_layout(
    layout: GroupLayout,
    cluster: VirtualCluster,
    tolerance: int = 1,
    domains=None,
) -> LayoutReport:
    """Check orthogonality and parity independence.

    ``tolerance`` is the erasure capability of the coding scheme in use
    (1 for XOR, 2 for RDP and RS(k,2), ``m`` for RS(k,m)): a group may
    co-locate at most ``tolerance`` elements (members + parity shards)
    per node — or per failure *domain* when
    a :class:`repro.failures.domains.FailureDomainMap` is given.
    """
    errors: list[str] = []

    def unit_of(node_id: int) -> int:
        return domains.domain_of(node_id) if domains is not None else node_id

    unit_name = "domain" if domains is not None else "node"
    for g in layout.groups:
        nodes: list[int] = []
        for vm_id in g.member_vm_ids:
            vm = cluster.vm(vm_id)
            if vm.node_id is None:
                errors.append(f"group {g.group_id}: vm {vm_id} is homeless")
                continue
            nodes.append(vm.node_id)
        # count elements (members + parity block) per failure unit
        per_unit: dict[int, int] = {}
        for n in nodes:
            per_unit[unit_of(n)] = per_unit.get(unit_of(n), 0) + 1
        for pnode in g.parity_nodes:
            pu = unit_of(pnode)
            per_unit[pu] = per_unit.get(pu, 0) + 1
        for unit_id, count in per_unit.items():
            if count > tolerance:
                errors.append(
                    f"group {g.group_id}: {count} elements on {unit_name} "
                    f"{unit_id} exceeds tolerance {tolerance}"
                )
    return LayoutReport(ok=not errors, errors=errors, parity_load=layout.parity_load())


def group_losses_if_node_fails(
    layout: GroupLayout, cluster: VirtualCluster, node_id: int
) -> dict[int, int]:
    """Elements (members + parity) each group loses when ``node_id`` dies."""
    losses: dict[int, int] = {}
    for g in layout.groups:
        n = sum(
            1 for vm_id in g.member_vm_ids if cluster.vm(vm_id).node_id == node_id
        )
        n += sum(1 for p in g.parity_nodes if p == node_id)
        if n:
            losses[g.group_id] = n
    return losses


def survives_single_node_failure(
    layout: GroupLayout, cluster: VirtualCluster, tolerance: int = 1
) -> bool:
    """True iff every possible single node crash is recoverable."""
    return all(
        max(group_losses_if_node_fails(layout, cluster, n.node_id).values(), default=0)
        <= tolerance
        for n in cluster.nodes
    )


def tolerable_node_failure_sets(
    layout: GroupLayout, cluster: VirtualCluster, tolerance: int = 1, max_set: int = 2
) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
    """Enumerate which node-failure combinations (up to ``max_set``
    simultaneous crashes) are survivable.  Returns (survivable, fatal)."""
    from itertools import combinations

    node_ids = [n.node_id for n in cluster.nodes]
    survivable: list[tuple[int, ...]] = []
    fatal: list[tuple[int, ...]] = []
    for r in range(1, max_set + 1):
        for combo in combinations(node_ids, r):
            worst = 0
            for g in layout.groups:
                loss = sum(
                    1
                    for vm_id in g.member_vm_ids
                    if cluster.vm(vm_id).node_id in combo
                )
                loss += sum(1 for p in g.parity_nodes if p in combo)
                worst = max(worst, loss)
            (survivable if worst <= tolerance else fatal).append(combo)
    return survivable, fatal


def rebalance_after_migration(
    layout: GroupLayout, cluster: VirtualCluster, tolerance: int = 1
) -> GroupLayout:
    """After live migrations have moved VMs, rebuild any groups whose
    constraints broke ("mixing up the distribution of VM's per physical
    node", Section IV-A).

    Groups still satisfying the constraints are kept verbatim (their
    parity blocks stay valid — no re-encode needed); violated groups'
    members are pooled and re-grouped.  The returned layout reuses
    surviving group ids and appends fresh ids for rebuilt groups.
    """
    keep: list[RaidGroup] = []
    pool_vm_ids: list[int] = []
    for g in layout.groups:
        per_node: dict[int, int] = {}
        ok = True
        for vm_id in g.member_vm_ids:
            node = cluster.vm(vm_id).node_id
            if node is None:
                ok = False
                continue
            per_node[node] = per_node.get(node, 0) + 1
        for pnode in g.parity_nodes:
            per_node[pnode] = per_node.get(pnode, 0) + 1
        if ok and max(per_node.values()) <= tolerance:
            keep.append(g)
        else:
            pool_vm_ids.extend(v for v in g.member_vm_ids)
    if not pool_vm_ids:
        return layout
    pool_vms = [cluster.vm(v) for v in pool_vm_ids if cluster.vm(v).node_id is not None]
    sizes = [g.size for g in layout.groups]
    target_size = max(sizes) if sizes else 1
    target_size = min(target_size, len({vm.node_id for vm in pool_vms}) or 1)
    n_parity = max((len(g.parity_nodes) for g in layout.groups), default=1)
    rebuilt = build_orthogonal_layout(
        cluster, target_size, parity="rotate", vms=pool_vms, n_parity=n_parity
    )
    next_id = max((g.group_id for g in keep), default=-1) + 1
    renumbered = [
        RaidGroup(next_id + i, g.member_vm_ids, g.parity_node, g.extra_parity_nodes)
        for i, g in enumerate(rebuilt.groups)
    ]
    return GroupLayout(keep + renumbered)
