"""Double-parity diskless checkpointing (the RDP extension).

Section II-B2 points at the road past single parity: "Wang et al
recently implemented RDP codes, which tolerate up to two simultaneous
failures, and found favorable results."  This module carries the DVDC
architecture to that regime: each RAID group stores *two* parity shards
— RDP row parity and diagonal parity — on two distinct nodes that host
none of the group's members.  Any two simultaneous node failures are
then survivable, closing the degraded-window data-loss mode the
single-parity protocol exhibits under dense failures (see
EXPERIMENTS.md, completion-rate note).

Costs relative to single-parity DVDC:

* storage — two parity images per group instead of one (2/k overhead);
* traffic — each member's capture is shipped to *both* parity nodes
  (2× exchange traffic);
* CPU — row parity is the same XOR; diagonal parity is a comparable
  second pass (charged at the same byte rate).

The protocol here uses full captures per epoch (RDP's diagonal parity
does not admit the sparse in-place delta update XOR row parity enjoys;
incremental double-parity would need P/Q-style logging, noted as future
work in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..checkpoint.base import CaptureStrategy, CheckpointCycleResult
from ..checkpoint.coordinator import CoordinatedCheckpoint
from ..checkpoint.strategies import ForkedCapture
from ..cluster.cluster import VirtualCluster
from ..cluster.images import CheckpointImage, CheckpointKind, ParityBlock
from ..cluster.vm import VMState
from ..sim import AllOf, NULL_TRACER, Resource, Tracer
from ..coding import RDPScheme
from .dvdc import DEFAULT_XOR_BANDWIDTH
from .groups import LayoutError
from ..network.link import NetworkError
from .recovery import DisklessRecoveryReport

__all__ = [
    "DoubleParityGroup",
    "DoubleParityLayout",
    "build_double_parity_layout",
    "DoubleParityCheckpointer",
]


@dataclass(frozen=True)
class DoubleParityGroup:
    """A RAID group protected by RDP: members + (row, diagonal) nodes."""

    group_id: int
    member_vm_ids: tuple[int, ...]
    row_parity_node: int
    diag_parity_node: int

    def __post_init__(self) -> None:
        if self.row_parity_node == self.diag_parity_node:
            raise LayoutError(
                f"group {self.group_id}: the two parity shards must live "
                "on distinct nodes"
            )

    @property
    def size(self) -> int:
        return len(self.member_vm_ids)

    @property
    def parity_nodes(self) -> tuple[int, int]:
        return (self.row_parity_node, self.diag_parity_node)


@dataclass
class DoubleParityLayout:
    """Partition of VMs into RDP-protected groups."""

    groups: list[DoubleParityGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._group_of: dict[int, DoubleParityGroup] = {}
        for g in self.groups:
            for vm_id in g.member_vm_ids:
                if vm_id in self._group_of:
                    raise LayoutError(f"vm {vm_id} appears in two groups")
                self._group_of[vm_id] = g

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    @property
    def vm_ids(self) -> list[int]:
        return sorted(self._group_of)

    def group_of(self, vm_id: int) -> DoubleParityGroup:
        try:
            return self._group_of[vm_id]
        except KeyError:
            raise LayoutError(f"vm {vm_id} is not in any group") from None


def build_double_parity_layout(
    cluster: VirtualCluster, group_size: int
) -> DoubleParityLayout:
    """Greedy orthogonal grouping with two rotating parity homes.

    Needs ``group_size + 2`` distinct nodes per group: members on
    ``group_size`` nodes, row and diagonal parity on two further nodes.
    Parity assignments rotate to balance load.
    """
    if group_size < 1:
        raise LayoutError(f"group_size must be >= 1, got {group_size}")
    if group_size + 2 > cluster.n_nodes:
        raise LayoutError(
            f"double parity with group_size {group_size} needs at least "
            f"{group_size + 2} nodes; cluster has {cluster.n_nodes}"
        )
    by_node: dict[int, list[int]] = {}
    for vm in cluster.all_vms:
        if vm.node_id is None:
            raise LayoutError(f"vm {vm.vm_id} is not hosted anywhere")
        by_node.setdefault(vm.node_id, []).append(vm.vm_id)
    for ids in by_node.values():
        ids.sort()

    groups: list[DoubleParityGroup] = []
    parity_count: dict[int, int] = {n.node_id: 0 for n in cluster.nodes}
    gid = 0
    while any(by_node.values()):
        order = sorted(by_node, key=lambda n: (-len(by_node[n]), n))
        donors = [n for n in order if by_node[n]][:group_size]
        member_ids = tuple(by_node[n].pop(0) for n in donors)
        member_nodes = set(donors)
        eligible = sorted(
            (n.node_id for n in cluster.nodes if n.node_id not in member_nodes),
            key=lambda n: (parity_count[n], n),
        )
        if len(eligible) < 2:
            raise LayoutError(
                f"group {gid}: cannot place two parity shards off the "
                f"{len(member_nodes)} member nodes"
            )
        row_node, diag_node = eligible[0], eligible[1]
        parity_count[row_node] += 1
        parity_count[diag_node] += 1
        groups.append(DoubleParityGroup(gid, member_ids, row_node, diag_node))
        gid += 1
    return DoubleParityLayout(groups)


class DoubleParityCheckpointer:
    """RDP-protected diskless checkpointing: survives any two
    simultaneous node failures.

    Cycle: coordinated capture → every member ships its image to *both*
    parity nodes → row node XORs, diagonal node computes RDP diagonals →
    two-phase commit.  Recovery handles one or two failed nodes at once:
    all losses within a group (members and/or parity shards, ≤ 2) are
    rebuilt via :class:`~repro.core.parity.RDPCode.reconstruct`.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        layout: DoubleParityLayout,
        strategy: CaptureStrategy | None = None,
        xor_bandwidth: float = DEFAULT_XOR_BANDWIDTH,
        tracer: Tracer = NULL_TRACER,
    ):
        self.cluster = cluster
        self.layout = layout
        self.strategy = strategy or ForkedCapture()
        self.xor_bandwidth = float(xor_bandwidth)
        self.tracer = tracer
        self.coordinator = CoordinatedCheckpoint(cluster, self.strategy, tracer)
        self.epoch = 0
        self.committed_epoch = -1
        self.last_cycle_at: float | None = None
        self._engines = {
            n.node_id: Resource(cluster.sim, capacity=1) for n in cluster.nodes
        }
        #: RDP expressed on the pluggable scheme interface (one codec
        #: cached per group size inside the scheme)
        self.scheme = RDPScheme()

    # ------------------------------------------------------------------
    def _group_cycle(self, group, outcomes, result, staged, staged_commits):
        sim = self.cluster.sim
        images = [outcomes[v].image for v in group.member_vm_ids if v in outcomes]
        if not images:
            return
        flows = []
        total = 0.0
        for img in images:
            vm = self.cluster.vm(img.vm_id)
            assert vm.node_id is not None
            total += img.logical_bytes
            result.network_bytes += 2 * img.logical_bytes
            for target, tag in (
                (group.row_parity_node, "row"),
                (group.diag_parity_node, "diag"),
            ):
                flows.append(
                    self.cluster.topology.transfer(
                        vm.node_id, target, img.logical_bytes,
                        label=f"rdp.g{group.group_id}.vm{img.vm_id}.{tag}",
                    )
                )
        try:
            yield AllOf(sim, flows)
        except NetworkError:
            return  # epoch aborts via the failure check at commit

        # parity computation on both nodes, concurrently, each serialized
        # against other groups using the same node
        def compute_on(node_id):
            engine = self._engines[node_id]
            req = engine.request()
            yield req
            try:
                yield sim.timeout(total / self.xor_bandwidth)
            finally:
                engine.release()

        yield AllOf(sim, [
            sim.process(compute_on(group.row_parity_node)),
            sim.process(compute_on(group.diag_parity_node)),
        ])
        result.parity_bytes += 2 * total

        functional = all(img.payload is not None for img in images)
        row_data = diag_data = None
        if functional and len(images) == group.size:
            row_data, diag_data = self.scheme.encode(
                [img.payload_flat() for img in images]
            )
        logical = max(img.logical_bytes for img in images)
        staged[group.group_id] = (
            ParityBlock(group.group_id, self.epoch, group.member_vm_ids,
                        logical, data=row_data),
            ParityBlock(group.group_id, self.epoch, group.member_vm_ids,
                        logical, data=diag_data),
        )
        for img in images:
            staged_commits[img.vm_id] = img

    def run_cycle(self):
        """Process: one coordinated RDP checkpoint epoch."""
        sim = self.cluster.sim
        start = sim.now
        epoch = self.epoch
        failure_snapshot = self.cluster.failure_epoch
        elapsed = (start - self.last_cycle_at) if self.last_cycle_at else start
        vms = [
            self.cluster.vm(v)
            for v in self.layout.vm_ids
            if self.cluster.vm(v).state != VMState.FAILED
        ]
        outcomes_list, pause = yield from self.coordinator.capture_all(
            vms, epoch, elapsed
        )
        outcomes = {o.image.vm_id: o for o in outcomes_list}
        result = CheckpointCycleResult(epoch=epoch, started_at=start, overhead=pause)
        staged: dict[int, tuple[ParityBlock, ParityBlock]] = {}
        staged_commits: dict[int, CheckpointImage] = {}
        procs = [
            sim.process(self._group_cycle(g, outcomes, result, staged, staged_commits))
            for g in self.layout.groups
        ]
        if procs:
            yield AllOf(sim, procs)
        # commit (abort if any node died mid-cycle)
        if self.cluster.failure_epoch != failure_snapshot:
            result.latency = sim.now - start
            result.committed = False
            self.tracer.emit(sim.now, "rdp.cycle_aborted", epoch=epoch)
            return result
        for group in self.layout.groups:
            if group.group_id not in staged:
                continue
            row, diag = staged[group.group_id]
            self.cluster.node(group.row_parity_node).store_parity(row)
            # the diagonal shard keyed separately: offset id space
            diag_key = -(group.group_id + 1)
            diag.group_id = diag_key
            self.cluster.node(group.diag_parity_node).parity_store[diag_key] = diag
            diag.stored_on_node = group.diag_parity_node
        for vm_id, image in staged_commits.items():
            vm = self.cluster.vm(vm_id)
            if vm.node_id is not None:
                self.cluster.hypervisor(vm.node_id).commit_checkpoint(image)
                vm.epoch = epoch
        self.committed_epoch = epoch
        self.epoch += 1
        self.last_cycle_at = sim.now
        result.latency = sim.now - start
        result.committed = True
        self.tracer.emit(sim.now, "rdp.cycle", epoch=epoch, latency=result.latency)
        return result

    # ------------------------------------------------------------------
    def _shards_for(self, group) -> tuple[list, list]:
        """Collect surviving member payloads and parity shards."""
        members = []
        for v in group.member_vm_ids:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                members.append(None)
                continue
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            members.append(None if img is None or img.payload is None
                           else img.payload_flat())
        row_node = self.cluster.node(group.row_parity_node)
        diag_node = self.cluster.node(group.diag_parity_node)
        row = (
            row_node.parity_store.get(group.group_id)
            if row_node.alive else None
        )
        diag = (
            diag_node.parity_store.get(-(group.group_id + 1))
            if diag_node.alive else None
        )
        parity = [
            None if row is None or row.data is None else row.data,
            None if diag is None or diag.data is None else diag.data,
        ]
        return members, parity

    def _recover_group(self, group, lost_set, report: DisklessRecoveryReport):
        """Process: rebuild a group's lost members (≤ 2) via RDP."""
        sim = self.cluster.sim
        lost_members = [v for v in group.member_vm_ids if v in lost_set]
        members, parity = self._shards_for(group)
        n_missing = sum(1 for m in members if m is None) + sum(
            1 for p in parity if p is None
        )
        if n_missing > 2:
            raise RuntimeError(
                f"group {group.group_id}: {n_missing} shards lost — beyond "
                "RDP's double-erasure tolerance"
            )
        # choose a staging node: prefer a surviving parity node
        staging = None
        for node_id in group.parity_nodes:
            if self.cluster.node(node_id).alive:
                staging = node_id
                break
        if staging is None:
            staging = self.cluster.alive_nodes[0].node_id
        # survivors + surviving parity ship to the staging node
        flows = []
        moved = 0.0
        vm_bytes = max(self.cluster.vm(v).memory_bytes for v in group.member_vm_ids)
        for v, payload in zip(group.member_vm_ids, members):
            vm = self.cluster.vm(v)
            if payload is None or vm.node_id is None or vm.node_id == staging:
                continue
            flows.append(self.cluster.topology.transfer(
                vm.node_id, staging, vm.memory_bytes,
                label=f"rdp.rebuild.g{group.group_id}.vm{v}",
            ))
            moved += vm.memory_bytes
        for node_id, shard in zip(group.parity_nodes, parity):
            if shard is None or node_id == staging:
                continue
            if self.cluster.node(node_id).alive:
                flows.append(self.cluster.topology.transfer(
                    node_id, staging, vm_bytes,
                    label=f"rdp.rebuild.g{group.group_id}.parity",
                ))
                moved += vm_bytes
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                return  # retried by the queued failure's recovery
        report.network_bytes += moved
        # decode cost: one pass over the full group
        decode_bytes = vm_bytes * (group.size + 2)
        engine = self._engines[staging]
        req = engine.request()
        yield req
        try:
            yield sim.timeout(decode_bytes / self.xor_bandwidth)
        finally:
            engine.release()
        report.xor_bytes += decode_bytes

        rebuilt_all = None
        if all(p is not None or v in lost_set
               for v, p in zip(group.member_vm_ids, members)):
            functional_ok = all(
                m is not None
                for v, m in zip(group.member_vm_ids, members)
                if v not in lost_set
            )
            if functional_ok:
                try:
                    nbytes = next(
                        m.shape[0] for m in members if m is not None
                    )
                except StopIteration:
                    nbytes = None
                rebuilt_all = self.scheme.reconstruct(
                    members, parity, nbytes=nbytes
                )
                if nbytes is not None:
                    rebuilt_all = [r[:nbytes] for r in rebuilt_all]

        # place + restore lost members
        member_nodes = {
            self.cluster.vm(v).node_id
            for v in group.member_vm_ids
            if self.cluster.vm(v).node_id is not None
        }
        for idx, v in enumerate(group.member_vm_ids):
            if v not in lost_set:
                continue
            vm = self.cluster.vm(v)
            candidates = [
                n for n in self.cluster.alive_nodes
                if n.node_id not in member_nodes
                and n.node_id not in group.parity_nodes
            ] or [n for n in self.cluster.alive_nodes
                  if n.node_id not in member_nodes] or self.cluster.alive_nodes
            target = min(candidates, key=lambda n: (len(n.vms), n.node_id)).node_id
            if target != staging:
                flow = self.cluster.topology.transfer(
                    staging, target, vm.memory_bytes,
                    label=f"rdp.restore.vm{v}",
                )
                report.network_bytes += vm.memory_bytes
                try:
                    yield flow
                except NetworkError:
                    continue  # this VM stays failed; retried later
            self.cluster.place_failed_vm(v, target)
            member_nodes.add(target)
            payload = rebuilt_all[idx] if rebuilt_all is not None else None
            image = CheckpointImage(
                vm_id=v, epoch=self.committed_epoch, kind=CheckpointKind.FULL,
                logical_bytes=vm.memory_bytes, captured_at=sim.now,
                payload=payload, meta={"reconstructed": True},
            )
            hv = self.cluster.hypervisor(target)
            if payload is not None or vm.image is None:
                hv.restore(vm, image)
            else:
                vm.revive()
            hv.commit_checkpoint(image)
            report.reconstructed[v] = target

        # re-encode any lost parity shard onto a fresh node
        yield from self._reencode_if_needed(group, report)

    def _reencode_if_needed(self, group, report: DisklessRecoveryReport):
        sim = self.cluster.sim
        members, parity = self._shards_for(group)
        if all(m is not None for m in members) and any(p is None for p in parity):
            # recompute both shards where missing
            member_nodes = {
                self.cluster.vm(v).node_id for v in group.member_vm_ids
            }
            taken = set()
            new_nodes = list(group.parity_nodes)
            for i, p in enumerate(parity):
                if p is not None and self.cluster.node(group.parity_nodes[i]).alive:
                    taken.add(group.parity_nodes[i])
            for i, p in enumerate(parity):
                if p is not None and self.cluster.node(group.parity_nodes[i]).alive:
                    continue
                candidates = [
                    n.node_id for n in self.cluster.alive_nodes
                    if n.node_id not in member_nodes and n.node_id not in taken
                ] or [n.node_id for n in self.cluster.alive_nodes
                      if n.node_id not in taken]
                node_id = candidates[0]
                taken.add(node_id)
                new_nodes[i] = node_id
                # ship members there and recompute
                flows = []
                total = 0.0
                for v in group.member_vm_ids:
                    vm = self.cluster.vm(v)
                    if vm.node_id != node_id:
                        flows.append(self.cluster.topology.transfer(
                            vm.node_id, node_id, vm.memory_bytes,
                            label=f"rdp.reencode.g{group.group_id}",
                        ))
                        total += vm.memory_bytes
                if flows:
                    try:
                        yield AllOf(sim, flows)
                    except NetworkError:
                        return  # retried later
                report.network_bytes += total
                engine = self._engines[node_id]
                req = engine.request()
                yield req
                try:
                    yield sim.timeout(
                        total / self.xor_bandwidth if total else 0.0
                    )
                finally:
                    engine.release()
                report.xor_bytes += total
            # recompute functional shards if possible
            payloads = [
                self.cluster.hypervisor(self.cluster.vm(v).node_id)
                .committed(v)
                for v in group.member_vm_ids
            ]
            functional = all(
                img is not None and img.payload is not None for img in payloads
            )
            row_data = diag_data = None
            if functional:
                row_data, diag_data = self.scheme.encode(
                    [img.payload_flat() for img in payloads]
                )
            logical = max(
                self.cluster.vm(v).memory_bytes for v in group.member_vm_ids
            )
            row = ParityBlock(group.group_id, self.committed_epoch,
                              group.member_vm_ids, logical, data=row_data)
            diag = ParityBlock(-(group.group_id + 1), self.committed_epoch,
                               group.member_vm_ids, logical, data=diag_data)
            self.cluster.node(new_nodes[0]).store_parity(row)
            self.cluster.node(new_nodes[1]).parity_store[-(group.group_id + 1)] = diag
            diag.stored_on_node = new_nodes[1]
            # update layout
            idx = next(
                i for i, g in enumerate(self.layout.groups)
                if g.group_id == group.group_id
            )
            new_group = DoubleParityGroup(
                group.group_id, group.member_vm_ids, new_nodes[0], new_nodes[1]
            )
            self.layout.groups[idx] = new_group
            for v in group.member_vm_ids:
                self.layout._group_of[v] = new_group
            report.reencoded_groups.append(group.group_id)

    def recover(self, *failed_node_ids: int):
        """Process: recover from one or *two* simultaneous node crashes."""
        sim = self.cluster.sim
        start = sim.now
        if self.committed_epoch < 0:
            raise RuntimeError("no committed checkpoint epoch to recover from")
        report = DisklessRecoveryReport(
            failed_node=failed_node_ids[0] if failed_node_ids else -1
        )
        lost_set = {
            vm.vm_id
            for vm in self.cluster.all_vms
            if vm.state == VMState.FAILED and vm.node_id is None
        }
        procs = []
        handled_groups = set()
        for vm_id in sorted(lost_set):
            group = self.layout.group_of(vm_id)
            if group.group_id in handled_groups:
                continue
            handled_groups.add(group.group_id)
            procs.append(sim.process(self._recover_group(group, lost_set, report)))
        # groups that lost parity only
        for group in self.layout.groups:
            if group.group_id in handled_groups:
                continue
            row_alive = self.cluster.node(group.row_parity_node).alive
            diag_alive = self.cluster.node(group.diag_parity_node).alive
            if not (row_alive and diag_alive):
                procs.append(sim.process(self._reencode_if_needed(group, report)))
        # survivor rollback
        for vm_id in self.layout.vm_ids:
            if vm_id not in lost_set:
                procs.append(sim.process(self._rollback(vm_id, report)))
        if procs:
            yield AllOf(sim, procs)
        report.recovery_time = sim.now - start
        report.restored_epoch = self.committed_epoch
        self.tracer.emit(
            sim.now, "rdp.recovery", nodes=list(failed_node_ids),
            duration=report.recovery_time,
        )
        return report

    def _rollback(self, vm_id: int, report: DisklessRecoveryReport):
        vm = self.cluster.vm(vm_id)
        if vm.node_id is None or vm.state == VMState.FAILED:
            return
        hv = self.cluster.hypervisor(vm.node_id)
        image = hv.committed(vm_id)
        if image is None:
            raise RuntimeError(f"vm {vm_id} has no committed checkpoint")
        if vm.state == VMState.RUNNING:
            vm.pause()
        yield self.cluster.sim.timeout(vm.memory_bytes / self.xor_bandwidth)
        if vm.node_id is None or vm.state == VMState.FAILED:
            return
        hv.restore(vm, image)
        if vm.state == VMState.PAUSED:
            vm.resume()
        report.rolled_back.append(vm_id)
