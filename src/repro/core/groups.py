"""Orthogonal RAID group construction (Figs. 2–4).

The placement rules that make VM-image RAID safe on a virtualized
cluster (Section IV-B):

1. **orthogonality** — members of one parity group live on pairwise
   distinct physical nodes (a node failure may cost each group at most
   one member);
2. **parity independence** — a group's parity block lives on a node
   hosting *none* of its members (else one crash costs a member *and*
   the parity: unrecoverable under single-parity).

Three layouts reproduce the paper's figures:

* :func:`layout_firstshot` — Fig. 1: one VM per node, a single group,
  parity on a dedicated spare node;
* :func:`layout_checkpoint_node` — Fig. 3: orthogonal groups with all
  parity concentrated on one checkpointing node;
* :func:`layout_dvdc` — Fig. 4: orthogonal groups with parity rotated
  across all nodes RAID-5 style, every node a compute node.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VirtualMachine

__all__ = [
    "RaidGroup",
    "GroupLayout",
    "LayoutError",
    "build_orthogonal_layout",
    "layout_firstshot",
    "layout_checkpoint_node",
    "layout_dvdc",
]


class LayoutError(RuntimeError):
    """No layout satisfying the orthogonality constraints exists."""


@dataclass(frozen=True)
class RaidGroup:
    """One parity group: an ordered tuple of member VMs plus the node(s)
    responsible for holding (and computing) their parity shards.

    ``parity_node`` is shard 0's home — the only shard under the
    classic single-parity (XOR) scheme, which is why it keeps its
    historical name and position.  Coding schemes with ``m > 1`` shards
    (RDP, RS(k, m), replication) place shards ``1..m-1`` on
    ``extra_parity_nodes``, each a distinct non-member node.
    """

    group_id: int
    member_vm_ids: tuple[int, ...]
    parity_node: int
    extra_parity_nodes: tuple[int, ...] = ()

    @property
    def size(self) -> int:
        return len(self.member_vm_ids)

    @property
    def parity_nodes(self) -> tuple[int, ...]:
        """All shard homes, shard index order: ``(parity_node, *extras)``."""
        return (self.parity_node, *self.extra_parity_nodes)


@dataclass
class GroupLayout:
    """A complete partition of protected VMs into RAID groups."""

    groups: list[RaidGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._group_of: dict[int, RaidGroup] = {}
        for g in self.groups:
            for vm_id in g.member_vm_ids:
                if vm_id in self._group_of:
                    raise LayoutError(f"vm {vm_id} appears in two groups")
                self._group_of[vm_id] = g

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    @property
    def vm_ids(self) -> list[int]:
        return sorted(self._group_of)

    def group_of(self, vm_id: int) -> RaidGroup:
        try:
            return self._group_of[vm_id]
        except KeyError:
            raise LayoutError(f"vm {vm_id} is not in any group") from None

    def replace_group(self, group_id: int, new_group: RaidGroup) -> None:
        """Swap a group in place (e.g. parity moved to a new node),
        keeping the vm→group index consistent."""
        idx = next(
            (i for i, g in enumerate(self.groups) if g.group_id == group_id), None
        )
        if idx is None:
            raise LayoutError(f"no group with id {group_id}")
        old = self.groups[idx]
        if new_group.member_vm_ids != old.member_vm_ids:
            for vm_id in old.member_vm_ids:
                del self._group_of[vm_id]
            for vm_id in new_group.member_vm_ids:
                if vm_id in self._group_of:
                    raise LayoutError(f"vm {vm_id} already in another group")
        self.groups[idx] = new_group
        for vm_id in new_group.member_vm_ids:
            self._group_of[vm_id] = new_group

    def add_group(self, group: RaidGroup) -> None:
        """Append a new group (e.g. freshly provisioned VMs entering
        protection), keeping ids and the vm→group index consistent."""
        if any(g.group_id == group.group_id for g in self.groups):
            raise LayoutError(f"group id {group.group_id} already in layout")
        for vm_id in group.member_vm_ids:
            if vm_id in self._group_of:
                raise LayoutError(f"vm {vm_id} already in another group")
        self.groups.append(group)
        for vm_id in group.member_vm_ids:
            self._group_of[vm_id] = group

    def next_group_id(self) -> int:
        return max((g.group_id for g in self.groups), default=-1) + 1

    def groups_with_parity_on(self, node_id: int) -> list[RaidGroup]:
        return [g for g in self.groups if node_id in g.parity_nodes]

    def parity_load(self) -> dict[int, int]:
        """Shards-per-parity-node histogram — Fig. 4's even distribution
        shows up as a flat histogram, Fig. 3's as a single spike."""
        load: dict[int, int] = {}
        for g in self.groups:
            for n in g.parity_nodes:
                load[n] = load.get(n, 0) + 1
        return load


def _vms_by_node(
    cluster: VirtualCluster, vms: Iterable[VirtualMachine]
) -> dict[int, list[int]]:
    by_node: dict[int, list[int]] = {}
    for vm in vms:
        if vm.node_id is None:
            raise LayoutError(f"vm {vm.vm_id} is not hosted anywhere")
        by_node.setdefault(vm.node_id, []).append(vm.vm_id)
    for ids in by_node.values():
        ids.sort()
    return by_node


def build_orthogonal_layout(
    cluster: VirtualCluster,
    group_size: int,
    parity: str | int = "rotate",
    vms: Sequence[VirtualMachine] | None = None,
    domains=None,
    n_parity: int = 1,
) -> GroupLayout:
    """Greedy orthogonal grouping.

    Repeatedly forms a group by drawing one unassigned VM from each of
    the ``group_size`` nodes currently holding the most unassigned VMs
    (largest-first greedy — the classic feasibility-preserving heuristic
    for balanced partition into rainbow sets).  A final group may be
    smaller than ``group_size`` when counts don't divide evenly.

    ``parity`` is either ``"rotate"`` (balance parity blocks across all
    eligible nodes — RAID-5 style, Fig. 4) or a fixed node id (dedicated
    checkpointing node, Figs. 1/3).

    ``domains`` (a :class:`repro.failures.domains.FailureDomainMap`)
    strengthens orthogonality to *failure domains*: members of a group
    are drawn from distinct racks/PDUs and the parity node's domain
    hosts none of them, so a whole-domain crash costs each group at
    most one element — Fig. 2's controller argument lifted to racks.

    ``n_parity`` is the coding scheme's shard count ``m``: each group
    gets ``m`` pairwise-distinct non-member parity nodes.  In rotate
    mode all ``m`` are drawn from the least-loaded heap; with a fixed
    parity node, shard 0 lands there and shards ``1..m-1`` rotate over
    the remaining eligible nodes.
    """
    if group_size < 1:
        raise LayoutError(f"group_size must be >= 1, got {group_size}")
    if n_parity < 1:
        raise LayoutError(f"n_parity must be >= 1, got {n_parity}")
    pool = vms if vms is not None else cluster.all_vms
    by_node = _vms_by_node(cluster, pool)
    if domains is not None:
        hosting_domains = {domains.domain_of(n) for n in by_node}
        if group_size > len(hosting_domains):
            raise LayoutError(
                f"group_size {group_size} exceeds the {len(hosting_domains)} "
                "failure domains hosting VMs"
            )
    elif group_size > len(by_node):
        raise LayoutError(
            f"group_size {group_size} exceeds the {len(by_node)} nodes hosting VMs"
        )
    if isinstance(parity, int):
        parity_nodes_fixed = parity
        if not (0 <= parity < cluster.n_nodes):
            raise LayoutError(f"parity node {parity} out of range")
    else:
        parity_nodes_fixed = None
        if parity != "rotate":
            raise LayoutError(f"parity must be 'rotate' or a node id, got {parity!r}")

    groups: list[RaidGroup] = []
    parity_count: dict[int, int] = {n.node_id: 0 for n in cluster.nodes}
    gid = 0
    # Donor selection is "nodes with most remaining VMs first, stable
    # tie-break by id" — historically a full sort per group, O(G·n log n).
    # A lazy max-heap of (-remaining, node_id) pops valid entries in that
    # exact order (stale counts are re-pushed with their current value),
    # so the donor sequence — and hence the layout — is bit-identical at
    # O(log n) amortized per draw.
    donor_heap = [(-len(ids), n) for n, ids in by_node.items() if ids]
    heapq.heapify(donor_heap)
    remaining_total = sum(len(ids) for ids in by_node.values())
    # Rotate-mode parity is "least parity blocks, tie-break by id" over
    # eligible nodes — the same lazy-heap trick applies.
    parity_heap = [(0, n.node_id) for n in cluster.nodes if n.alive]
    heapq.heapify(parity_heap)
    while remaining_total:
        donors: list[int] = []
        skipped: list[tuple[int, int]] = []  # valid but domain-duplicated
        used_domains: set[int] = set()
        while donor_heap and len(donors) < group_size:
            negc, n = heapq.heappop(donor_heap)
            ids = by_node[n]
            if not ids:
                continue
            if -negc != len(ids):  # stale count: reinsert at its true rank
                heapq.heappush(donor_heap, (-len(ids), n))
                continue
            if domains is not None:
                d = domains.domain_of(n)
                if d in used_domains:
                    skipped.append((negc, n))
                    continue
                used_domains.add(d)
            donors.append(n)
        member_ids = tuple(by_node[n].pop(0) for n in donors)
        remaining_total -= len(member_ids)
        for entry in skipped:
            heapq.heappush(donor_heap, entry)
        for n in donors:
            if by_node[n]:
                heapq.heappush(donor_heap, (-len(by_node[n]), n))
        member_nodes = set(donors)
        member_domains = (
            {domains.domain_of(n) for n in member_nodes}
            if domains is not None
            else None
        )
        picked: list[int] = []
        picked_domains: set[int] = set()
        if parity_nodes_fixed is not None:
            if parity_nodes_fixed in member_nodes:
                raise LayoutError(
                    f"dedicated parity node {parity_nodes_fixed} hosts a member "
                    f"of group {gid}; exclude its VMs from the layout"
                )
            if member_domains is not None and (
                domains.domain_of(parity_nodes_fixed) in member_domains
            ):
                raise LayoutError(
                    f"dedicated parity node {parity_nodes_fixed} shares a "
                    f"failure domain with a member of group {gid}"
                )
            picked.append(parity_nodes_fixed)
            if domains is not None:
                picked_domains.add(domains.domain_of(parity_nodes_fixed))
            parity_count[parity_nodes_fixed] += 1
        while len(picked) < n_parity:
            # first valid pop == min over eligible nodes by
            # (parity_count, id); members / shared-domain / already
            # picked nodes are set aside and restored after the pick
            # (their counts are untouched, so their entries stay exact)
            pnode = None
            aside: list[tuple[int, int]] = []
            while parity_heap:
                c, n = heapq.heappop(parity_heap)
                if c != parity_count[n]:  # stale: reinsert at true rank
                    heapq.heappush(parity_heap, (parity_count[n], n))
                    continue
                if (
                    n in member_nodes
                    or n in picked
                    or (
                        member_domains is not None
                        and domains.domain_of(n) in member_domains
                    )
                    or (domains is not None and domains.domain_of(n) in picked_domains)
                ):
                    aside.append((c, n))
                    continue
                pnode = n
                break
            for entry in aside:
                heapq.heappush(parity_heap, entry)
            if pnode is None:
                raise LayoutError(
                    f"no node available to hold parity shard {len(picked)} of "
                    f"group {gid}: members and prior shards cover every eligible "
                    + ("failure domain" if domains is not None else "node")
                    + " — reduce group_size or the scheme's shard count"
                )
            heapq.heappush(parity_heap, (parity_count[pnode] + 1, pnode))
            parity_count[pnode] += 1
            picked.append(pnode)
            if domains is not None:
                picked_domains.add(domains.domain_of(pnode))
        groups.append(RaidGroup(gid, member_ids, picked[0], tuple(picked[1:])))
        gid += 1
    return GroupLayout(groups)


def layout_firstshot(
    cluster: VirtualCluster,
    parity_node: int | None = None,
    n_parity: int = 1,
) -> GroupLayout:
    """Fig. 1: one VM per node, one big N-member group, dedicated parity.

    ``parity_node`` defaults to the highest-numbered node without VMs;
    with an ``n_parity``-shard coding scheme the extra shards take the
    next-highest VM-free nodes.  Raises if any node hosts more than one
    protected VM — the restriction the first-shot design imposes.
    """
    by_node = _vms_by_node(cluster, cluster.all_vms)
    for node_id, ids in by_node.items():
        if len(ids) > 1:
            raise LayoutError(
                f"first-shot architecture allows one VM per node; node "
                f"{node_id} hosts {len(ids)}"
            )
    empty = sorted(
        (n.node_id for n in cluster.nodes if n.node_id not in by_node),
        reverse=True,
    )
    if parity_node is None:
        if not empty:
            raise LayoutError("no VM-free node available as the parity node")
        parity_node = empty[0]
    if parity_node in by_node:
        raise LayoutError(f"parity node {parity_node} hosts a VM")
    extras = tuple(n for n in empty if n != parity_node)[: n_parity - 1]
    if len(extras) < n_parity - 1:
        raise LayoutError(
            f"need {n_parity} VM-free parity nodes, only {len(extras) + 1} available"
        )
    members = tuple(ids[0] for _, ids in sorted(by_node.items()))
    return GroupLayout([RaidGroup(0, members, parity_node, extras)])


def layout_checkpoint_node(
    cluster: VirtualCluster,
    checkpoint_node: int,
    group_size: int | None = None,
    n_parity: int = 1,
) -> GroupLayout:
    """Fig. 3: orthogonal groups; every group's primary parity on one
    dedicated checkpointing node (which must host no protected VMs).
    With a multi-shard scheme, shards ``1..m-1`` rotate over non-member
    compute nodes, so the default group size shrinks to leave them room.
    """
    compute_vms = [vm for vm in cluster.all_vms if vm.node_id != checkpoint_node]
    if len(compute_vms) != len(cluster.all_vms):
        raise LayoutError(
            f"checkpoint node {checkpoint_node} hosts VMs; move them first"
        )
    n_compute = len({vm.node_id for vm in compute_vms})
    size = group_size if group_size is not None else n_compute - (n_parity - 1)
    return build_orthogonal_layout(
        cluster, size, parity=checkpoint_node, vms=compute_vms, n_parity=n_parity
    )


def layout_dvdc(
    cluster: VirtualCluster, group_size: int | None = None, n_parity: int = 1,
    domains=None,
) -> GroupLayout:
    """Fig. 4: fully distributed — orthogonal groups, parity rotated over
    all nodes, every node computes.  Default group size is
    ``n_nodes - n_parity`` (members on all nodes but the scheme's ``m``
    shard homes; single parity keeps the paper's ``n_nodes - 1``).
    ``domains`` constrains orthogonality to failure domains (geo-spread:
    default size then becomes ``n_domains - n_parity``)."""
    if group_size is not None:
        size = group_size
    elif domains is not None:
        size = domains.n_domains - n_parity
    else:
        size = cluster.n_nodes - n_parity
    return build_orthogonal_layout(
        cluster, size, parity="rotate", domains=domains, n_parity=n_parity
    )
