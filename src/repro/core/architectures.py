"""The three architecture variants of Section IV as ready-made factories.

Each returns a :class:`~repro.core.dvdc.DisklessCheckpointer` wired to
the corresponding layout:

* :func:`first_shot` — Fig. 1: one VM per node, one N-member group,
  fan-in to a dedicated parity node;
* :func:`checkpoint_node` — Fig. 3: orthogonal groups, all parity
  concentrated on one dedicated checkpointing node;
* :func:`dvdc` — Fig. 4: orthogonal groups, parity rotated across all
  compute nodes (the paper's Distributed Virtual Diskless Checkpointing).
"""

from __future__ import annotations

from ..checkpoint.base import CaptureStrategy
from ..checkpoint.compression import NO_COMPRESSION, CompressionModel
from ..cluster.cluster import VirtualCluster
from ..sim import NULL_TRACER, Tracer
from ..coding import get_scheme
from .dvdc import DEFAULT_XOR_BANDWIDTH, DisklessCheckpointer
from .groups import layout_checkpoint_node, layout_dvdc, layout_firstshot

__all__ = ["first_shot", "checkpoint_node", "dvdc"]


def first_shot(
    cluster: VirtualCluster,
    parity_node: int | None = None,
    strategy: CaptureStrategy | None = None,
    compression: CompressionModel = NO_COMPRESSION,
    xor_bandwidth: float = DEFAULT_XOR_BANDWIDTH,
    tracer: Tracer = NULL_TRACER,
    auditor=None,
    retry=None,
    retry_rng=None,
    scheme=None,
) -> DisklessCheckpointer:
    """Fig. 1 — the "first-shot" N+1 architecture."""
    coding = get_scheme(scheme)
    layout = layout_firstshot(cluster, parity_node, n_parity=coding.n_shards)
    return DisklessCheckpointer(
        cluster, layout, strategy, compression, xor_bandwidth, tracer, auditor,
        retry=retry, retry_rng=retry_rng, scheme=coding,
    )


def checkpoint_node(
    cluster: VirtualCluster,
    node_id: int,
    group_size: int | None = None,
    strategy: CaptureStrategy | None = None,
    compression: CompressionModel = NO_COMPRESSION,
    xor_bandwidth: float = DEFAULT_XOR_BANDWIDTH,
    tracer: Tracer = NULL_TRACER,
    auditor=None,
    retry=None,
    retry_rng=None,
    scheme=None,
) -> DisklessCheckpointer:
    """Fig. 3 — orthogonal RAID with a dedicated checkpointing node."""
    coding = get_scheme(scheme)
    layout = layout_checkpoint_node(
        cluster, node_id, group_size, n_parity=coding.n_shards
    )
    return DisklessCheckpointer(
        cluster, layout, strategy, compression, xor_bandwidth, tracer, auditor,
        retry=retry, retry_rng=retry_rng, scheme=coding,
    )


def dvdc(
    cluster: VirtualCluster,
    group_size: int | None = None,
    strategy: CaptureStrategy | None = None,
    compression: CompressionModel = NO_COMPRESSION,
    xor_bandwidth: float = DEFAULT_XOR_BANDWIDTH,
    tracer: Tracer = NULL_TRACER,
    auditor=None,
    retry=None,
    retry_rng=None,
    scheme=None,
    domains=None,
) -> DisklessCheckpointer:
    """Fig. 4 — Distributed Virtual Diskless Checkpointing.

    ``domains`` (a :class:`~repro.failures.domains.FailureDomainMap`)
    switches the layout and recovery placement to geo-spread: group
    elements on pairwise-distinct failure domains, preserved through
    rebuilds and re-homes whenever capacity allows.
    """
    coding = get_scheme(scheme)
    layout = layout_dvdc(
        cluster, group_size, n_parity=coding.n_shards, domains=domains
    )
    return DisklessCheckpointer(
        cluster, layout, strategy, compression, xor_bandwidth, tracer, auditor,
        retry=retry, retry_rng=retry_rng, scheme=coding, domains=domains,
    )
