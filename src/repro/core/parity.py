"""Erasure codecs over VM checkpoint images.

Two codes, matching Section II-B2:

* :class:`XorCode` — the RAID-4/5 single-parity code the DVDC design
  uses ("a single parity checkpoint of the entire RAID group"); survives
  any one lost member (or the parity itself).
* :class:`RDPCode` — Row-Diagonal Parity (Corbett et al., FAST'04),
  the double-erasure code Wang et al. applied to diskless checkpointing;
  survives any two simultaneous losses.

Both operate on equal-length byte buffers (flat ``uint8`` arrays — the
committed checkpoint payloads).  Buffers are treated as *columns* of a
stripe; codes never interpret content.

The API is erasure-oriented: ``encode`` produces the parity buffers for
a group; ``reconstruct`` takes the surviving subset (``None`` marks a
lost shard, data and parity alike) and returns the complete data list.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.xorsum import as_u8, xor_reduce

__all__ = ["ParityCodeError", "XorCode", "RDPCode", "smallest_prime_at_least"]


class ParityCodeError(RuntimeError):
    """Unrecoverable erasure pattern or malformed shards."""


def _normalize(buffers: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
    out = [as_u8(b) for b in buffers]
    if not out:
        raise ParityCodeError("empty member list")
    n = out[0].shape[0]
    for b in out[1:]:
        if b.shape[0] != n:
            raise ParityCodeError(f"members must be equal length: {n} vs {b.shape[0]}")
    return out


class XorCode:
    """Single-parity XOR code (RAID-4/5 over checkpoint images)."""

    n_parity = 1
    tolerates = 1

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        """Parity = XOR of all members; returns a one-element list."""
        return [xor_reduce(_normalize(members))]

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        parity: Sequence[np.ndarray | None],
    ) -> list[np.ndarray]:
        """Fill in at most one missing member (or verify-complete).

        Raises :class:`ParityCodeError` if more shards are missing than
        the code tolerates.
        """
        if len(parity) != 1:
            raise ParityCodeError(f"XorCode expects 1 parity shard, got {len(parity)}")
        missing = [i for i, m in enumerate(members) if m is None]
        if not missing:
            return [as_u8(m).copy() for m in members]  # type: ignore[arg-type]
        if len(missing) > 1:
            raise ParityCodeError(
                f"XOR parity tolerates 1 erasure, {len(missing)} members missing"
            )
        if parity[0] is None:
            raise ParityCodeError(
                "cannot rebuild a member when the parity shard is also lost"
            )
        survivors = [as_u8(m) for m in members if m is not None]
        rebuilt = xor_reduce(survivors + [as_u8(parity[0])])
        return [
            rebuilt if i == missing[0] else as_u8(m).copy()
            for i, m in enumerate(members)
        ]


def smallest_prime_at_least(n: int) -> int:
    """Smallest prime ≥ n (RDP needs a prime stripe parameter)."""
    candidate = max(n, 2)
    while True:
        if candidate == 2:
            return 2
        if candidate % 2 == 0:
            candidate += 1
            continue
        d, prime = 3, True
        while d * d <= candidate:
            if candidate % d == 0:
                prime = False
                break
            d += 2
        if prime:
            return candidate
        candidate += 2


class RDPCode:
    """Row-Diagonal Parity: two parity shards, survives any two erasures.

    Construction (Corbett et al.): pick prime ``p`` with ``k ≤ p - 1``
    data columns (absent data columns are virtual zeros).  Each column is
    split into ``p - 1`` equal rows.  Column ``p - 1`` holds row parity;
    the diagonal-parity shard stores, for each diagonal ``d ∈ [0, p-2]``,
    the XOR of all blocks ``(row i, column j)`` with ``(i + j) mod p == d``
    over columns ``0..p-1`` (data *and* row parity).  Diagonal ``p - 1``
    is never stored — the redundancy that lets double-erasure recovery
    bootstrap.

    Recovery is implemented as constraint propagation over the row and
    diagonal equations: repeatedly find an equation with exactly one
    unknown block and solve it.  For any ≤ 2 erasures this converges (the
    RDP chain argument); the solver also transparently handles mixed
    data/parity losses.

    Buffers whose length is not divisible by ``p - 1`` are zero-padded
    internally; reconstruction returns original lengths.
    """

    n_parity = 2
    tolerates = 2

    def __init__(self, k: int, p: int | None = None):
        if k < 1:
            raise ParityCodeError(f"need >= 1 data member, got {k}")
        self.k = k
        self.p = p if p is not None else smallest_prime_at_least(k + 1)
        if self.p < k + 1:
            raise ParityCodeError(f"p={self.p} too small for k={k} (need p >= k+1)")

    # ------------------------------------------------------------------
    def _rowbytes(self, nbytes: int) -> int:
        rows = self.p - 1
        return (nbytes + rows - 1) // rows

    def _stripe(self, buf: np.ndarray, rowbytes: int) -> np.ndarray:
        rows = self.p - 1
        padded = np.zeros(rows * rowbytes, dtype=np.uint8)
        padded[: buf.shape[0]] = buf
        return padded.reshape(rows, rowbytes)

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        """Returns ``[row_parity, diagonal_parity]``, each of the padded
        stripe size ``(p-1) · rowbytes``."""
        bufs = _normalize(members)
        if len(bufs) != self.k:
            raise ParityCodeError(f"expected {self.k} members, got {len(bufs)}")
        rowbytes = self._rowbytes(bufs[0].shape[0])
        p, rows = self.p, self.p - 1
        cols = np.zeros((p, rows, rowbytes), dtype=np.uint8)
        for j, m in enumerate(bufs):
            cols[j] = self._stripe(m, rowbytes)
        cols[p - 1] = np.bitwise_xor.reduce(cols[: p - 1], axis=0)
        diag = np.zeros((rows, rowbytes), dtype=np.uint8)
        for j in range(p):
            for i in range(rows):
                d = (i + j) % p
                if d < rows:
                    np.bitwise_xor(diag[d], cols[j, i], out=diag[d])
        return [cols[p - 1].reshape(-1).copy(), diag.reshape(-1).copy()]

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        parity: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        """Rebuild up to two erased shards (members and/or parity).

        ``nbytes`` gives the original member length when no member
        survives to infer it from (parity shards are padded).
        """
        if len(members) != self.k:
            raise ParityCodeError(f"expected {self.k} members, got {len(members)}")
        if len(parity) != 2:
            raise ParityCodeError(f"RDP expects 2 parity shards, got {len(parity)}")
        missing_data = [i for i, m in enumerate(members) if m is None]
        n_missing = len(missing_data) + sum(1 for q in parity if q is None)
        if n_missing > 2:
            raise ParityCodeError(
                f"RDP tolerates 2 erasures, {n_missing} shards missing"
            )
        if not missing_data:
            return [as_u8(m).copy() for m in members]  # type: ignore[arg-type]

        survivors = [as_u8(m) for m in members if m is not None]
        if survivors:
            nbytes = survivors[0].shape[0]
        elif nbytes is None:
            raise ParityCodeError(
                "no surviving member to infer length from; pass nbytes"
            )
        rowbytes = self._rowbytes(nbytes)
        p, rows = self.p, self.p - 1

        # Column state: data columns 0..p-2 (virtual zeros beyond k),
        # row parity at p-1.  known[j] marks trusted columns.
        cols = np.zeros((p, rows, rowbytes), dtype=np.uint8)
        known = np.zeros(p, dtype=bool)
        for j, m in enumerate(members):
            if m is not None:
                cols[j] = self._stripe(as_u8(m), rowbytes)
                known[j] = True
        for j in range(self.k, p - 1):
            known[j] = True  # virtual zero columns
        if parity[0] is not None:
            cols[p - 1] = self._stripe(as_u8(parity[0]), rowbytes)
            known[p - 1] = True
        diag = (
            self._stripe(as_u8(parity[1]), rowbytes)
            if parity[1] is not None
            else None
        )

        self._solve(cols, known, diag)

        return [
            as_u8(m).copy()
            if m is not None
            else cols[i].reshape(-1)[:nbytes].copy()
            for i, m in enumerate(members)
        ]

    def _solve(self, cols: np.ndarray, known: np.ndarray, diag: np.ndarray | None) -> None:
        """Constraint propagation over row + diagonal parity equations.

        Unknown blocks are ``(j, i)`` for unknown columns j.  Equations:

        * row i:   XOR over all p columns of block (j, i) == 0
          (valid because column p-1 is the row parity);
        * diag d:  XOR over blocks on diagonal d == diag[d] (stored d).

        Each iteration solves every equation that is down to one unknown.
        """
        p, rows = self.p, self.p - 1
        unknown_cols = [j for j in range(p) if not known[j]]
        if not unknown_cols:
            return
        unsolved: set[tuple[int, int]] = {
            (j, i) for j in unknown_cols for i in range(rows)
        }

        # Precompute equation membership.
        row_eqs = [[(j, i) for j in unknown_cols] for i in range(rows)]
        diag_eqs: list[list[tuple[int, int]]] = []
        if diag is not None:
            for d in range(rows):
                blocks = []
                for j in unknown_cols:
                    i = (d - j) % p
                    if i < rows:
                        blocks.append((j, i))
                diag_eqs.append(blocks)

        def row_rhs(i: int) -> np.ndarray:
            acc = np.zeros(cols.shape[2], dtype=np.uint8)
            for j in range(p):
                if known[j] or (j, i) not in unsolved:
                    np.bitwise_xor(acc, cols[j, i], out=acc)
            return acc

        def diag_rhs(d: int) -> np.ndarray:
            assert diag is not None
            acc = diag[d].copy()
            for j in range(p):
                i = (d - j) % p
                if i >= rows:
                    continue
                if known[j] or (j, i) not in unsolved:
                    np.bitwise_xor(acc, cols[j, i], out=acc)
            return acc

        for _ in range(2 * p * p):  # generous bound; chain length ≤ 2(p-1)
            if not unsolved:
                break
            progressed = False
            for i in range(rows):
                pending = [b for b in row_eqs[i] if b in unsolved]
                if len(pending) == 1:
                    j, _ = pending[0]
                    cols[j, i] = row_rhs(i)
                    unsolved.discard((j, i))
                    progressed = True
            if diag is not None:
                for d in range(rows):
                    pending = [b for b in diag_eqs[d] if b in unsolved]
                    if len(pending) == 1:
                        j, i = pending[0]
                        cols[j, i] = diag_rhs(d)
                        unsolved.discard((j, i))
                        progressed = True
            if not progressed:
                break
        if unsolved:
            raise ParityCodeError(
                f"RDP propagation stalled with {len(unsolved)} blocks unsolved "
                "(erasure pattern beyond code capability?)"
            )
