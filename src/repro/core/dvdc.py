"""The diskless checkpoint protocol over a RAID group layout.

:class:`DisklessCheckpointer` implements the checkpoint and recovery
protocols of Section IV for *any* :class:`~repro.core.groups.GroupLayout`
— the Fig. 1 first-shot layout, the Fig. 3 dedicated-checkpoint-node
layout, and the Fig. 4 DVDC layout are the same protocol pointed at
different parity placements (that observation is the paper's own
narrative arc).  Convenience constructors for the three architectures
live in :mod:`repro.core.architectures`.

Checkpoint cycle (one epoch):

1. **capture** — coordinated barrier pause (strategy-dependent cost);
2. **exchange** — each member streams its (compressed) capture to its
   group's parity node.  Under the Fig. 4 layout these flows ride
   disjoint NIC pairs and proceed in parallel; under Figs. 1/3 they
   fan into one node and serialize — the architectural contrast the
   model quantifies;
3. **parity** — the parity node XORs the member data into a *staged*
   parity block (one XOR engine per node: concurrent groups with parity
   on the same node serialize, distributed parity parallelizes —
   Section IV-B's "relieve the CPU burden by a factor linear in the
   amount of machines");
4. **commit** — two-phase: staged parity blocks and captured member
   images replace the previous epoch everywhere, atomically at the
   commit timestamp.  Until then the previous epoch remains fully
   recoverable.

Incremental epochs move only dirty data: members ship the XOR-delta
``old ⊕ new`` of their dirty pages and the parity node folds it into
the staged copy of the previous parity — the RAID-5 small-write
optimization applied to checkpoints.

Recovery (after a node crash): every surviving VM rolls back to its
local in-memory checkpoint (a memory copy — no disk, no network); each
group that lost a member rebuilds it from survivors + parity at the
parity node and ships the image to a replacement node; groups that lost
their parity block re-encode onto a new node.  See
:class:`~repro.core.recovery.DisklessRecoveryReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..checkpoint.base import CaptureOutcome, CaptureStrategy, CheckpointCycleResult
from ..checkpoint.compression import NO_COMPRESSION, CompressionModel
from ..checkpoint.coordinator import CoordinatedCheckpoint
from ..checkpoint.strategies import ForkedCapture
from ..cluster.bufpool import GLOBAL_POOL
from ..cluster.checksum import block_checksum, block_checksums_rows
from ..cluster.cluster import VirtualCluster
from ..cluster.images import CheckpointImage, CheckpointKind, ParityBlock
from ..cluster.memory import PageDelta, recycle_delta
from ..cluster.vm import VMState
from ..cluster.xorsum import (
    reconstruct_missing_padded,
    xor_fold_groups,
    xor_reduce_groups,
    xor_reduce_padded,
)
from ..coding import CodingScheme, XorScheme, get_scheme, shard_key
from ..network.link import NetworkError
from ..sim import AllOf, NULL_TRACER, Resource, Tracer
from ..telemetry import probe_of
from .groups import GroupLayout, RaidGroup
from .recovery import DisklessRecoveryReport, choose_parity_node, choose_restore_node

__all__ = ["DisklessCheckpointer", "DisklessCycleResult", "DEFAULT_XOR_BANDWIDTH"]

#: In-memory XOR throughput default (bytes/second) — DDR3-era streaming.
DEFAULT_XOR_BANDWIDTH = 4e9


@dataclass
class DisklessCycleResult(CheckpointCycleResult):
    """Cycle accounting plus the per-node parity workload split."""

    xor_seconds_by_node: dict[int, float] = field(default_factory=dict)
    #: groups whose exchange died (node crash, or retries exhausted on a
    #: transient outage); non-empty forces the epoch to abort even when
    #: no node failure bumped the failure epoch
    failed_groups: list[int] = field(default_factory=list)

    @property
    def max_node_xor_seconds(self) -> float:
        return max(self.xor_seconds_by_node.values(), default=0.0)

    @property
    def total_xor_seconds(self) -> float:
        return sum(self.xor_seconds_by_node.values())


class DisklessCheckpointer:
    """Diskless checkpoint/recovery over a group layout."""

    def __init__(
        self,
        cluster: VirtualCluster,
        layout: GroupLayout,
        strategy: CaptureStrategy | None = None,
        compression: CompressionModel = NO_COMPRESSION,
        xor_bandwidth: float = DEFAULT_XOR_BANDWIDTH,
        tracer: Tracer = NULL_TRACER,
        auditor=None,
        retry=None,
        retry_rng=None,
        scheme: CodingScheme | str | None = None,
        domains=None,
    ):
        if xor_bandwidth <= 0:
            raise ValueError(f"xor_bandwidth must be > 0, got {xor_bandwidth}")
        self.cluster = cluster
        self.layout = layout
        #: the erasure-coding scheme protecting every group (default: the
        #: paper's single-parity XOR).  When it is XOR, every hot path
        #: below runs the historical single-shard code verbatim — the
        #: golden scale64 digests pin that bit-for-bit; other schemes
        #: take the generalized m-shard branches.
        self.scheme = get_scheme(scheme)
        self._is_xor = isinstance(self.scheme, XorScheme)
        self.strategy = strategy or ForkedCapture()
        self.compression = compression
        self.xor_bandwidth = xor_bandwidth
        self.tracer = tracer
        self._probe = probe_of(tracer)
        #: optional :class:`repro.resilience.retry.RetryPolicy`; when set,
        #: every protocol transfer retries transient failures with backoff
        self.retry = retry
        self.retry_rng = retry_rng
        #: optional audit hook (``post_cycle``/``post_recovery``/
        #: ``post_capture``); see :class:`repro.audit.Auditor`.  Duck-typed
        #: so the core stays import-free of :mod:`repro.audit`.
        self.auditor = auditor
        #: optional :class:`~repro.failures.domains.FailureDomainMap`:
        #: recovery placement then prefers nodes whose failure domain
        #: holds no other element of the group (geo-spread policy)
        self.domains = domains
        #: optional zero-arg callable returning node ids recovery must
        #: not place onto (controlplane maintenance/fencing cordons);
        #: composed into every chooser's exclusion set
        self.cordons = None
        self.coordinator = CoordinatedCheckpoint(
            cluster, self.strategy, tracer, auditor
        )
        self.epoch = 0
        self.committed_epoch = -1
        self.last_cycle_at: float | None = None
        self.history: list[DisklessCycleResult] = []
        # one parity/XOR engine per node: groups sharing a parity node
        # serialize their XOR work there
        self._xor_engines = {
            n.node_id: Resource(cluster.sim, capacity=1) for n in cluster.nodes
        }

    def attach_auditor(self, auditor) -> None:
        """Install (or replace) the audit hook after construction."""
        self.auditor = auditor
        self.coordinator.auditor = auditor

    # ------------------------------------------------------------------
    # recovery placement constraints
    # ------------------------------------------------------------------
    def _recovery_exclude(self, base: set[int]) -> set[int]:
        """Exclusion set for recovery placement: the crash being handled
        plus any controlplane cordons (maintenance / fencing) — a drain
        in progress must never become a parity or restore target."""
        if self.cordons is not None:
            return base | set(self.cordons())
        return base

    # ------------------------------------------------------------------
    # transfers (retry seam)
    # ------------------------------------------------------------------
    def _transfer(self, src: int, dst: int, size: float, label: str):
        """One protocol transfer: a plain :class:`~repro.network.link.Flow`,
        or — when a retry policy is installed — a process that re-issues
        the flow on transient failures with exponential backoff.  Either
        way the result is yieldable and fails with a
        :class:`~repro.network.link.NetworkError` subclass."""
        if self.retry is None:
            return self.cluster.topology.transfer(src, dst, size, label=label)
        # Deferred import: resilience sits above core in the layering.
        from ..resilience.retry import retrying_transfer

        return self.cluster.sim.process(retrying_transfer(
            self.cluster.sim,
            lambda: self.cluster.topology.transfer(src, dst, size, label=label),
            self.retry,
            rng=self.retry_rng,
            probe=self._probe,
            label=label,
        ))

    # ------------------------------------------------------------------
    # checkpoint cycle
    # ------------------------------------------------------------------
    def _xor_delta_payload(
        self, old: CheckpointImage, new: CheckpointImage
    ) -> PageDelta | None:
        """For functional incremental captures: pages of ``old ⊕ new``
        restricted to the dirty set (what actually crosses the wire)."""
        if not isinstance(new.payload, PageDelta):
            return None
        delta: PageDelta = new.payload
        old_pages = old.payload_flat().reshape(
            delta.n_pages_total, delta.page_size
        )
        # pooled gather + in-place xor: no per-epoch temporaries
        buf = GLOBAL_POOL.acquire(delta.pages.nbytes)
        xored = buf.reshape(delta.n_pages, delta.page_size)
        np.take(old_pages, delta.indices, axis=0, out=xored)
        np.bitwise_xor(xored, delta.pages, out=xored)
        return PageDelta(
            page_size=delta.page_size,
            n_pages_total=delta.n_pages_total,
            indices=delta.indices,
            pages=xored,
        )

    def _group_cycle(
        self,
        group: RaidGroup,
        outcomes: dict[int, CaptureOutcome],
        result: DisklessCycleResult,
        pending: list,
        staged_commits: dict[int, CheckpointImage],
    ):
        """Process: exchange + validation for one group; the parity
        bytes themselves are encoded by the commit-time batched flush."""
        if not self._is_xor:
            yield from self._group_cycle_scheme(
                group, outcomes, result, pending, staged_commits
            )
            return
        sim = self.cluster.sim
        if not self.cluster.node(group.parity_node).alive:
            # the parity node died before the exchange even started (its
            # RAM — including any previous parity block — is gone); the
            # group contributes nothing and the epoch aborts
            result.failed_groups.append(group.group_id)
            return
        flows = []
        member_images: list[CheckpointImage] = []
        xor_deltas: dict[int, PageDelta] = {}
        raw_bytes = 0.0
        for vm_id in group.member_vm_ids:
            if vm_id not in outcomes:  # VM failed before capture
                continue
            o = outcomes[vm_id]
            vm = self.cluster.vm(vm_id)
            assert vm.node_id is not None
            member_images.append(o.image)
            # functional incremental: precompute old⊕new before commit
            if o.image.kind == CheckpointKind.INCREMENTAL and o.image.payload is not None:
                hv = self.cluster.hypervisor(vm.node_id)
                old = hv.committed(vm_id)
                if old is None or old.payload is None:
                    raise RuntimeError(
                        f"vm {vm_id}: incremental epoch without committed base"
                    )
                xd = self._xor_delta_payload(old, o.image)
                if xd is not None:
                    xor_deltas[vm_id] = xd
            wire = self.compression.output_bytes(o.image.logical_bytes)
            raw_bytes += o.image.logical_bytes
            result.network_bytes += wire
            flows.append(
                self._transfer(
                    vm.node_id,
                    group.parity_node,
                    wire,
                    label=f"dvdc.g{group.group_id}.vm{vm_id}.e{o.image.epoch}",
                )
            )
        if not member_images:
            return
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                # a node died mid-exchange, or a transient outage outlived
                # the retry budget; either way this group contributes
                # nothing and the epoch aborts (failed_groups guard)
                result.failed_groups.append(group.group_id)
                return

        # XOR at the parity node (serialized per node across groups)
        engine = self._xor_engines[group.parity_node]
        req = engine.request()
        yield req
        try:
            xor_time = raw_bytes / self.xor_bandwidth
            if xor_time > 0:
                yield sim.timeout(xor_time)
        finally:
            engine.release()
        result.parity_bytes += raw_bytes
        result.xor_seconds_by_node[group.parity_node] = (
            result.xor_seconds_by_node.get(group.parity_node, 0.0)
            + raw_bytes / self.xor_bandwidth
        )

        # Validate and *register* the parity encode; the numeric work
        # happens once per epoch in _flush_encodes, batched across every
        # group, on the commit path only.  All protocol-point checks
        # (parity-node aliveness, previous-block presence and checksum,
        # group homogeneity) stay right here so failure behavior is
        # unchanged; what moves is pure, event-free byte crunching whose
        # results only become observable at commit.
        prev = None
        functional = all(img.payload is not None for img in member_images)
        if functional:
            if any(img.kind == CheckpointKind.INCREMENTAL for img in member_images):
                pnode = self.cluster.node(group.parity_node)
                if not pnode.alive:
                    # died between the aliveness check above and the fold
                    result.failed_groups.append(group.group_id)
                    return
                prev = pnode.parity_store.get(group.group_id)
                if prev is None or prev.data is None:
                    raise RuntimeError(
                        f"group {group.group_id}: incremental parity update "
                        "without a previous parity block"
                    )
                if prev.checksum is not None and block_checksum(prev.data) != prev.checksum:
                    # folding a delta into rotten parity would produce a
                    # self-consistently-checksummed wrong block — refuse
                    raise RuntimeError(
                        f"group {group.group_id}: previous parity block fails "
                        "its checksum — silent corruption; scrub or run a "
                        "full epoch before folding increments"
                    )
                for img in member_images:
                    if img.kind != CheckpointKind.INCREMENTAL:
                        # a full capture mixed in (e.g. post-recovery)
                        raise RuntimeError(
                            "mixed full/incremental captures within one group "
                            "epoch are not supported; run a full epoch first"
                        )
                    xd = xor_deltas[img.vm_id]
                    if prev.data.shape[0] != xd.n_pages_total * xd.page_size:
                        raise RuntimeError(
                            "incremental epochs require homogeneous "
                            "image sizes within a group; use full/"
                            "forked capture for heterogeneous groups"
                        )
        pending.append((group, member_images, xor_deltas, prev, functional))
        for img in member_images:
            staged_commits[img.vm_id] = img

    def _flush_encodes(
        self, pending: list, staged: dict[int, ParityBlock]
    ) -> None:
        """Commit-time batched parity encode.

        ``pending`` holds one ``(group, member_images, xor_deltas, prev,
        functional)`` record per surviving group, registered in exchange
        completion order.  Groups are partitioned by shape signature and
        encoded with the stacked kernels (:func:`xor_reduce_groups`,
        :func:`xor_fold_groups`, :func:`block_checksums_rows`) — a
        handful of whole-cluster numpy calls instead of O(groups)
        small ones.  Results (parity bytes, checksums, staging order)
        are bit-identical to the historical per-group inline encode;
        odd-shaped groups fall back to the scalar path.
        """
        datas: list[np.ndarray | None] = [None] * len(pending)
        checksums: list[int | None] = [None] * len(pending)
        full_batches: dict[tuple[int, int], list[int]] = {}
        incr_batches: dict[tuple[int, int], list[int]] = {}
        for i, (group, member_images, xor_deltas, prev, functional) in enumerate(
            pending
        ):
            if not functional:
                continue
            if prev is not None:
                xd0 = xor_deltas[member_images[0].vm_id]
                incr_batches.setdefault(
                    (xd0.n_pages_total, xd0.page_size), []
                ).append(i)
            else:
                flats = [img.payload_flat() for img in member_images]
                lengths = {f.shape[0] for f in flats}
                if len(lengths) == 1:
                    full_batches.setdefault(
                        (len(flats), lengths.pop()), []
                    ).append(i)
                else:  # heterogeneous member sizes: scalar padded reduce
                    data = xor_reduce_padded(
                        flats,
                        out=GLOBAL_POOL.acquire(max(f.shape[0] for f in flats)),
                    )
                    datas[i] = data
                    checksums[i] = block_checksum(data)

        for (_n_members, _length), idxs in full_batches.items():
            stacked = xor_reduce_groups(
                [
                    [img.payload_flat() for img in pending[i][1]]
                    for i in idxs
                ]
            )
            row_sums = block_checksums_rows(stacked)
            for row, i in enumerate(idxs):
                datas[i] = stacked[row]
                checksums[i] = row_sums[row]

        for (n_pages_total, page_size), idxs in incr_batches.items():
            folds = []
            for i in idxs:
                _g, member_images, xor_deltas, _p, _f = pending[i]
                folds.append(
                    [
                        (
                            xor_deltas[img.vm_id].indices,
                            xor_deltas[img.vm_id].pages,
                        )
                        for img in member_images
                    ]
                )
            stacked = xor_fold_groups(
                [pending[i][3].data for i in idxs],
                folds,
                n_pages_total,
                page_size,
            )
            del folds
            row_sums = block_checksums_rows(stacked)
            for row, i in enumerate(idxs):
                datas[i] = stacked[row]
                checksums[i] = row_sums[row]
                # every delta of this group is folded; reclaim the pages
                member_images, xor_deltas = pending[i][1], pending[i][2]
                for img in member_images:
                    recycle_delta(xor_deltas.pop(img.vm_id))

        for i, (group, member_images, _xd, _prev, _f) in enumerate(pending):
            logical = max(img.logical_bytes for img in member_images)
            full_logical = max(
                self.cluster.vm(v).memory_bytes for v in group.member_vm_ids
            )
            staged[group.group_id] = ParityBlock(
                group_id=group.group_id,
                epoch=self.epoch,
                member_vm_ids=group.member_vm_ids,
                logical_bytes=full_logical if logical < full_logical else logical,
                data=datas[i],
                checksum=checksums[i],
                member_checksums={
                    img.vm_id: block_checksum(img.payload_flat())
                    for img in member_images
                    if isinstance(img.payload, np.ndarray)
                },
            )

    # ------------------------------------------------------------------
    # generalized m-shard paths (any CodingScheme other than plain XOR)
    # ------------------------------------------------------------------
    def _group_cycle_scheme(
        self,
        group: RaidGroup,
        outcomes: dict[int, CaptureOutcome],
        result: DisklessCycleResult,
        pending: list,
        staged_commits: dict[int, CheckpointImage],
    ):
        """Process: m-way exchange for one group under a general scheme.

        Every member ships its capture to *each* of the scheme's ``m``
        shard homes (the m-way traffic the scheme's ``traffic_factor``
        models), and each home charges its encode engine.  Incremental
        captures are materialized to full images (committed base + dirty
        pages) and the shards re-encoded whole — correct for any scheme,
        linear or not.
        """
        sim = self.cluster.sim
        shard_nodes = group.parity_nodes
        if any(not self.cluster.node(n).alive for n in shard_nodes):
            # a shard home died before the exchange (its RAM — including
            # any previous shard — is gone); the epoch aborts
            result.failed_groups.append(group.group_id)
            return
        flows = []
        member_images: list[CheckpointImage] = []
        full_flats: dict[int, np.ndarray] = {}
        raw_bytes = 0.0
        for vm_id in group.member_vm_ids:
            if vm_id not in outcomes:  # VM failed before capture
                continue
            o = outcomes[vm_id]
            vm = self.cluster.vm(vm_id)
            assert vm.node_id is not None
            member_images.append(o.image)
            if o.image.payload is not None:
                if o.image.kind == CheckpointKind.INCREMENTAL and isinstance(
                    o.image.payload, PageDelta
                ):
                    hv = self.cluster.hypervisor(vm.node_id)
                    old = hv.committed(vm_id)
                    if old is None or old.payload is None:
                        raise RuntimeError(
                            f"vm {vm_id}: incremental epoch without committed base"
                        )
                    delta: PageDelta = o.image.payload
                    pages = old.payload_flat().copy().reshape(
                        delta.n_pages_total, delta.page_size
                    )
                    pages[delta.indices] = delta.pages
                    full_flats[vm_id] = pages.reshape(-1)
                else:
                    full_flats[vm_id] = o.image.payload_flat()
            wire = self.compression.output_bytes(o.image.logical_bytes)
            raw_bytes += o.image.logical_bytes
            base = f"dvdc.g{group.group_id}.vm{vm_id}.e{o.image.epoch}"
            for j, pnode in enumerate(shard_nodes):
                result.network_bytes += wire
                flows.append(
                    self._transfer(
                        vm.node_id,
                        pnode,
                        wire,
                        label=base if j == 0 else f"{base}.s{j}",
                    )
                )
        if not member_images:
            return
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                result.failed_groups.append(group.group_id)
                return
        # encode at every shard home (serialized per node across groups)
        for pnode in shard_nodes:
            if not self.cluster.node(pnode).alive:
                result.failed_groups.append(group.group_id)
                return
            engine = self._xor_engines[pnode]
            req = engine.request()
            yield req
            try:
                xor_time = raw_bytes / self.xor_bandwidth
                if xor_time > 0:
                    yield sim.timeout(xor_time)
            finally:
                engine.release()
            result.parity_bytes += raw_bytes
            result.xor_seconds_by_node[pnode] = (
                result.xor_seconds_by_node.get(pnode, 0.0)
                + raw_bytes / self.xor_bandwidth
            )
        pending.append((group, member_images, full_flats))
        for img in member_images:
            staged_commits[img.vm_id] = img

    def _flush_encodes_scheme(self, pending: list, staged: dict[int, list]) -> None:
        """Commit-time shard encode for a general scheme.

        ``pending`` holds ``(group, member_images, full_flats)`` records;
        ``staged[group_id]`` becomes the shard-index-ordered list of
        :class:`ParityBlock`, keyed for the parity stores with
        :func:`repro.coding.shard_key`.
        """
        for group, member_images, full_flats in pending:
            functional = len(full_flats) == len(member_images) and member_images
            shards: list[np.ndarray] | None = None
            member_checksums: dict[int, int] = {}
            if functional:
                flats = [full_flats[img.vm_id] for img in member_images]
                shards = self.scheme.encode(flats)
                member_checksums = {
                    img.vm_id: block_checksum(full_flats[img.vm_id])
                    for img in member_images
                }
            logical = max(img.logical_bytes for img in member_images)
            full_logical = max(
                self.cluster.vm(v).memory_bytes for v in group.member_vm_ids
            )
            blocks = []
            for j in range(self.scheme.n_shards):
                data = shards[j] if shards is not None else None
                blocks.append(
                    ParityBlock(
                        group_id=shard_key(group.group_id, j),
                        epoch=self.epoch,
                        member_vm_ids=group.member_vm_ids,
                        logical_bytes=full_logical if logical < full_logical else logical,
                        data=data,
                        checksum=None if data is None else block_checksum(data),
                        member_checksums=dict(member_checksums),
                    )
                )
            staged[group.group_id] = blocks

    def run_cycle(self, pause_done=None):
        """Process: one coordinated diskless checkpoint epoch.

        Returns a :class:`DisklessCycleResult`.  Overhead is the barrier
        pause; latency runs until the commit point (all parity staged).

        ``pause_done`` — optional :class:`~repro.sim.process.SimEvent`
        succeeded the moment the capture barrier lifts and guests resume.
        Overlapped runners (``CheckpointedJob(overlap=True)``) wait on it
        to restart useful work while the exchange/XOR completes in the
        background — the latency-vs-overhead separation the paper argues
        diskless checkpointing is really about.

        Two-phase safety: if any node fails between capture and commit,
        the whole epoch is *aborted* (``result.committed == False``) and
        the previous epoch remains the recovery point.  The caller must
        run recovery (which rolls every VM back) before the next cycle.
        """
        sim = self.cluster.sim
        start = sim.now
        epoch = self.epoch
        failure_snapshot = self.cluster.failure_epoch
        elapsed = (start - self.last_cycle_at) if self.last_cycle_at is not None else start
        vms = [
            self.cluster.vm(v)
            for v in self.layout.vm_ids
            if self.cluster.vm(v).state != VMState.FAILED
        ]
        outcomes_list, pause = yield from self.coordinator.capture_all(
            vms, epoch, elapsed
        )
        outcomes = {o.image.vm_id: o for o in outcomes_list}
        if pause_done is not None and not pause_done.triggered:
            pause_done.succeed(pause)
        result = DisklessCycleResult(epoch=epoch, started_at=start, overhead=pause)
        for o in outcomes_list:
            result.per_vm_pause[o.image.vm_id] = o.pause_seconds

        staged: dict[int, ParityBlock] = {}
        staged_commits: dict[int, CheckpointImage] = {}
        pending: list = []
        group_procs = [
            sim.process(
                self._group_cycle(g, outcomes, result, pending, staged_commits)
            )
            for g in self.layout.groups
        ]
        if group_procs:
            yield AllOf(sim, group_procs)

        # ---- commit point: atomic swap of the whole epoch ----
        if self.cluster.failure_epoch != failure_snapshot or result.failed_groups:
            # a node died mid-cycle, or a group's exchange was lost to a
            # transient outage: abort; previous epoch stays valid
            result.latency = sim.now - start
            result.committed = False
            self.history.append(result)
            # aborted incremental captures already consumed the dirty log;
            # re-mark their pages so the next epoch's delta covers them
            for o in outcomes_list:
                img = o.image
                if img.kind == CheckpointKind.INCREMENTAL and isinstance(
                    img.payload, PageDelta
                ):
                    vm = self.cluster.vm(img.vm_id)
                    if vm.node_id is not None and vm.image is not None:
                        vm.image.touch_pages(img.payload.indices)
            self.tracer.emit(
                sim.now, "diskless.cycle_aborted", epoch=epoch,
                failed_groups=list(result.failed_groups),
            )
            if self.auditor is not None:
                self.auditor.post_cycle(self, result)
            return result
        groups_by_id = {g.group_id: g for g in self.layout.groups}
        if self._is_xor:
            self._flush_encodes(pending, staged)
            for group_id, block in staged.items():
                self.cluster.node(groups_by_id[group_id].parity_node).store_parity(block)
        else:
            self._flush_encodes_scheme(pending, staged)
            for group_id, blocks in staged.items():
                g = groups_by_id[group_id]
                for node_id, blk in zip(g.parity_nodes, blocks):
                    self.cluster.node(node_id).store_parity(blk)
        for vm_id, image in staged_commits.items():
            vm = self.cluster.vm(vm_id)
            if vm.node_id is None:
                continue
            self.cluster.hypervisor(vm.node_id).commit_checkpoint(image)
            vm.epoch = epoch
        self.committed_epoch = epoch
        self.epoch += 1
        self.last_cycle_at = sim.now
        result.latency = sim.now - start
        result.committed = True
        self.history.append(result)
        self.tracer.emit(
            sim.now, "diskless.cycle", epoch=epoch, overhead=result.overhead,
            latency=result.latency, network_bytes=result.network_bytes,
            parity_bytes=result.parity_bytes,
        )
        if self.auditor is not None:
            self.auditor.post_cycle(self, result)
        return result

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _rollback_survivor(self, vm_id: int, report: DisklessRecoveryReport):
        """Process: in-memory rollback of one surviving VM."""
        vm = self.cluster.vm(vm_id)
        if vm.node_id is None or vm.state == VMState.FAILED:
            return
        hv = self.cluster.hypervisor(vm.node_id)
        image = hv.committed(vm_id)
        if image is None:
            raise RuntimeError(f"vm {vm_id} has no committed local checkpoint")
        if vm.state == VMState.RUNNING:
            vm.pause()
        # in-memory restore: a local memcpy
        yield self.cluster.sim.timeout(
            vm.memory_bytes / self.xor_bandwidth
        )
        if vm.node_id is None or vm.state == VMState.FAILED:
            return  # node died mid-rollback; requeued failure handles it
        hv.restore(vm, image)
        # resume unconditionally: the VM may have been left paused by an
        # interrupted checkpoint barrier when the failure struck
        if vm.state == VMState.PAUSED:
            vm.resume()
        report.rolled_back.append(vm_id)

    def _rebuild_member(
        self, group: RaidGroup, lost_vm_id: int, report: DisklessRecoveryReport
    ):
        """Process: reconstruct one lost member from survivors + parity."""
        sim = self.cluster.sim
        parity_node = group.parity_node
        pnode = self.cluster.node(parity_node)
        block = pnode.parity_store.get(group.group_id)
        if block is None or not pnode.alive:
            raise RuntimeError(
                f"group {group.group_id}: parity block unavailable on node "
                f"{parity_node} — unrecoverable with single parity"
            )
        survivors = [v for v in group.member_vm_ids if v != lost_vm_id]
        flows = []
        survivor_payloads = []
        total_bytes = 0.0
        wire_bytes = 0.0
        for v in survivors:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                raise RuntimeError(
                    f"group {group.group_id}: survivor vm {v} also lost — "
                    "double failure exceeds XOR parity"
                )
            hv = self.cluster.hypervisor(vm.node_id)
            img = hv.committed(v)
            if img is None:
                raise RuntimeError(f"survivor vm {v} has no committed checkpoint")
            nbytes = self.cluster.vm(v).memory_bytes
            total_bytes += nbytes
            if img.payload is not None:
                survivor_payloads.append(img.payload_flat())
            if vm.node_id != parity_node:
                wire_bytes += nbytes
                flows.append(
                    self._transfer(
                        vm.node_id, parity_node, nbytes,
                        label=f"rebuild.g{group.group_id}.vm{v}",
                    )
                )
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                # another node died mid-rebuild; leave this VM failed —
                # the queued failure's recovery pass retries the group.
                # Aborted transfers never count toward report.network_bytes.
                return
        report.network_bytes += wire_bytes
        # XOR: survivors + parity
        if not self.cluster.node(parity_node).alive:
            raise RuntimeError(
                f"group {group.group_id}: parity node {parity_node} died "
                "during reconstruction — unrecoverable with single parity"
            )
        lost_vm = self.cluster.vm(lost_vm_id)
        xor_bytes = total_bytes + lost_vm.memory_bytes
        engine = self._xor_engines[parity_node]
        req = engine.request()
        yield req
        try:
            yield sim.timeout(xor_bytes / self.xor_bandwidth)
        finally:
            engine.release()
        report.xor_bytes += xor_bytes

        rebuilt: np.ndarray | None = None
        if block.data is not None and len(survivor_payloads) == len(survivors):
            rebuilt = reconstruct_missing_padded(
                survivor_payloads,
                block.data,
                lost_vm.image.nbytes
                if lost_vm.image is not None
                else block.data.shape[0],
            )
            expect = block.member_checksums.get(lost_vm_id)
            if expect is not None and block_checksum(rebuilt) != expect:
                raise RuntimeError(
                    f"vm {lost_vm_id}: rebuilt image fails its end-to-end "
                    "checksum — a survivor image or the parity block is "
                    "silently corrupt; scrub before recovering"
                )

        # ship the rebuilt image to its new home and restore
        target = choose_restore_node(
            self.cluster, self.layout, group,
            exclude=self._recovery_exclude({report.failed_node}),
            domains=self.domains,
        )
        if target != parity_node:
            flow = self._transfer(
                parity_node, target, lost_vm.memory_bytes,
                label=f"restore.g{group.group_id}.vm{lost_vm_id}",
            )
            try:
                yield flow
            except NetworkError:
                return  # destination (or source) died; retried later
            report.network_bytes += lost_vm.memory_bytes
        self.cluster.place_failed_vm(lost_vm_id, target)
        hv = self.cluster.hypervisor(target)
        image = CheckpointImage(
            vm_id=lost_vm_id,
            epoch=self.committed_epoch,
            kind=CheckpointKind.FULL,
            logical_bytes=lost_vm.memory_bytes,
            captured_at=sim.now,
            payload=rebuilt,
            meta={"reconstructed": True},
        )
        if rebuilt is not None or lost_vm.image is None:
            hv.restore(lost_vm, image)
        else:  # functional VM but timing-only parity: revive without bytes
            lost_vm.revive()
        hv.commit_checkpoint(image)
        report.reconstructed[lost_vm_id] = target
        self.tracer.emit(
            sim.now, "diskless.rebuild", vm=lost_vm_id, group=group.group_id,
            target=target,
        )

    def _reencode_parity(self, group: RaidGroup, report: DisklessRecoveryReport):
        """Process: rebuild a lost parity block on a fresh node."""
        sim = self.cluster.sim
        new_node = choose_parity_node(
            self.cluster, self.layout, group,
            exclude=self._recovery_exclude({report.failed_node}),
            domains=self.domains,
        )
        flows = []
        payloads = []
        total = 0.0
        wire_bytes = 0.0
        for v in group.member_vm_ids:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                # a member just died too: the queued failure's recovery
                # will rebuild it and re-encode this group afterwards
                return
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                raise RuntimeError(f"vm {v} has no committed checkpoint to re-encode")
            total += vm.memory_bytes
            if img.payload is not None:
                payloads.append(img.payload_flat())
            if vm.node_id != new_node:
                wire_bytes += vm.memory_bytes
                flows.append(
                    self._transfer(
                        vm.node_id, new_node, vm.memory_bytes,
                        label=f"reencode.g{group.group_id}.vm{v}",
                    )
                )
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                # retried by the queued failure's recovery; dead transfers
                # contribute nothing to the accounting
                return
        report.network_bytes += wire_bytes
        engine = self._xor_engines[new_node]
        req = engine.request()
        yield req
        try:
            yield sim.timeout(total / self.xor_bandwidth)
        finally:
            engine.release()
        report.xor_bytes += total
        data = (
            xor_reduce_padded(payloads)
            if payloads and len(payloads) == len(group.member_vm_ids)
            else None
        )
        member_checksums: dict[int, int] = {}
        if data is not None:
            for v, p in zip(group.member_vm_ids, payloads):
                member_checksums[v] = block_checksum(p)
        block = ParityBlock(
            group_id=group.group_id,
            epoch=self.committed_epoch,
            member_vm_ids=group.member_vm_ids,
            logical_bytes=max(
                self.cluster.vm(v).memory_bytes for v in group.member_vm_ids
            ),
            data=data,
            checksum=None if data is None else block_checksum(data),
            member_checksums=member_checksums,
        )
        self.cluster.node(new_node).store_parity(block)
        # drop the superseded block from the previous home, if any
        old_home = self.cluster.node(group.parity_node)
        if old_home.alive and old_home.node_id != new_node:
            old_home.parity_store.pop(group.group_id, None)
        # the layout now points parity at the new node
        self.layout.replace_group(
            group.group_id, RaidGroup(group.group_id, group.member_vm_ids, new_node)
        )
        report.reencoded_groups.append(group.group_id)
        self.tracer.emit(
            sim.now, "diskless.reencode", group=group.group_id, node=new_node
        )

    # ------------------------------------------------------------------
    # generalized m-shard recovery
    # ------------------------------------------------------------------
    def _shard_blocks(self, group: RaidGroup) -> list[ParityBlock | None]:
        """The group's shard blocks in shard-index order; ``None`` marks a
        shard whose home is dead or whose block is missing."""
        out: list[ParityBlock | None] = []
        for j, node_id in enumerate(group.parity_nodes):
            node = self.cluster.node(node_id)
            blk = (
                node.parity_store.get(shard_key(group.group_id, j))
                if node.alive
                else None
            )
            out.append(blk)
        return out

    def _missing_shard_slots(self, group: RaidGroup) -> list[int]:
        """Shard indices whose home is dead, block missing, or colocated
        with a member — everything :meth:`heal` must re-home.  With
        :attr:`domains` set, sharing a *failure domain* with a member
        counts as colocation too (geo-spread invariant)."""
        member_nodes = {
            self.cluster.vm(v).node_id
            for v in group.member_vm_ids
            if self.cluster.vm(v).node_id is not None
        }
        member_doms = (
            {self.domains.domain_of(m) for m in member_nodes}
            if self.domains is not None
            else None
        )
        slots = []
        for j, node_id in enumerate(group.parity_nodes):
            node = self.cluster.node(node_id)
            if (
                not node.alive
                or shard_key(group.group_id, j) not in node.parity_store
                or node_id in member_nodes
                or (
                    member_doms is not None
                    and self.domains.domain_of(node_id) in member_doms
                )
            ):
                slots.append(j)
        return slots

    def _recover_group_scheme(
        self, group: RaidGroup, lost_vm_ids: list[int], report: DisklessRecoveryReport
    ):
        """Process: rebuild every lost member of one group via the scheme.

        Handles any erasure pattern within ``scheme.tolerance`` (multiple
        members, members + shards); patterns beyond it raise the
        tolerance-aware unrecoverable error the audit classifier keys on.
        Missing shards are re-encoded afterwards in the same pass.
        """
        sim = self.cluster.sim
        k = len(group.member_vm_ids)
        shard_blocks = self._shard_blocks(group)
        lost_set = set(lost_vm_ids)
        missing_shards = sum(1 for b in shard_blocks if b is None)
        erasures = len(lost_set) + missing_shards
        staging = next(
            (
                group.parity_nodes[j]
                for j, b in enumerate(shard_blocks)
                if b is not None
            ),
            None,
        )
        # The scheme guarantees any <= tolerance erasures; replication can
        # additionally recover any pattern that leaves one replica alive.
        over_tolerance = erasures > self.scheme.tolerance
        replica_rescue = (
            getattr(self.scheme, "copies", None) is not None and staging is not None
        )
        if (over_tolerance and not replica_rescue) or staging is None:
            raise RuntimeError(
                f"group {group.group_id} lost {len(lost_set)} members and "
                f"{missing_shards} parity shards — beyond {self.scheme.name} "
                f"tolerance {self.scheme.tolerance}"
            )

        survivors = [v for v in group.member_vm_ids if v not in lost_set]
        flows = []
        wire_bytes = 0.0
        decode_bytes = 0.0
        survivor_payloads: dict[int, np.ndarray] = {}
        for v in survivors:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                raise RuntimeError(
                    f"group {group.group_id}: survivor vm {v} also lost — "
                    f"beyond {self.scheme.name} tolerance"
                )
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                raise RuntimeError(f"survivor vm {v} has no committed checkpoint")
            decode_bytes += vm.memory_bytes
            if img.payload is not None:
                survivor_payloads[v] = img.payload_flat()
            if vm.node_id != staging:
                wire_bytes += vm.memory_bytes
                flows.append(
                    self._transfer(
                        vm.node_id, staging, vm.memory_bytes,
                        label=f"rebuild.g{group.group_id}.vm{v}",
                    )
                )
        # surviving shards hosted elsewhere stream to the staging node too
        for j, blk in enumerate(shard_blocks):
            home = group.parity_nodes[j]
            if blk is None or home == staging:
                continue
            size = float(blk.data.shape[0]) if blk.data is not None else blk.logical_bytes
            decode_bytes += size
            wire_bytes += size
            flows.append(
                self._transfer(
                    home, staging, size,
                    label=f"rebuild.g{group.group_id}.s{j}",
                )
            )
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                # another node died mid-rebuild; the queued failure's
                # recovery pass retries the group
                return
        report.network_bytes += wire_bytes
        if not self.cluster.node(staging).alive:
            raise RuntimeError(
                f"group {group.group_id}: staging node {staging} died during "
                f"reconstruction — beyond {self.scheme.name} tolerance"
            )
        decode_bytes += sum(self.cluster.vm(v).memory_bytes for v in lost_set)
        engine = self._xor_engines[staging]
        req = engine.request()
        yield req
        try:
            yield sim.timeout(decode_bytes / self.xor_bandwidth)
        finally:
            engine.release()
        report.xor_bytes += decode_bytes

        functional = len(survivor_payloads) == len(survivors) and any(
            b is not None and b.data is not None for b in shard_blocks
        )
        rebuilt: dict[int, np.ndarray] = {}
        checksums_src = next(
            (b for b in shard_blocks if b is not None), None
        )
        if functional:
            ref = next(b for b in shard_blocks if b is not None and b.data is not None)
            length = self.scheme.working_length(int(ref.data.shape[0]), k)
            member_bufs = [
                survivor_payloads.get(v) if v not in lost_set else None
                for v in group.member_vm_ids
            ]
            shard_bufs = [
                None if b is None or b.data is None else b.data for b in shard_blocks
            ]
            decoded = self.scheme.reconstruct(member_bufs, shard_bufs, nbytes=length)
            for idx, v in enumerate(group.member_vm_ids):
                if v not in lost_set:
                    continue
                lost_vm = self.cluster.vm(v)
                nbytes = (
                    lost_vm.image.nbytes if lost_vm.image is not None else length
                )
                img_bytes = decoded[idx][:nbytes].copy()
                expect = (
                    checksums_src.member_checksums.get(v)
                    if checksums_src is not None
                    else None
                )
                if expect is not None and block_checksum(img_bytes) != expect:
                    raise RuntimeError(
                        f"vm {v}: rebuilt image fails its end-to-end checksum "
                        "— a survivor image or a parity shard is silently "
                        "corrupt; scrub before recovering"
                    )
                rebuilt[v] = img_bytes

        # ship each rebuilt image to its new home and restore
        for v in lost_vm_ids:
            lost_vm = self.cluster.vm(v)
            target = choose_restore_node(
                self.cluster, self.layout, group,
                exclude=self._recovery_exclude({report.failed_node}),
                domains=self.domains,
            )
            if target != staging:
                flow = self._transfer(
                    staging, target, lost_vm.memory_bytes,
                    label=f"restore.g{group.group_id}.vm{v}",
                )
                try:
                    yield flow
                except NetworkError:
                    return  # destination (or source) died; retried later
                report.network_bytes += lost_vm.memory_bytes
            self.cluster.place_failed_vm(v, target)
            hv = self.cluster.hypervisor(target)
            image = CheckpointImage(
                vm_id=v,
                epoch=self.committed_epoch,
                kind=CheckpointKind.FULL,
                logical_bytes=lost_vm.memory_bytes,
                captured_at=sim.now,
                payload=rebuilt.get(v),
                meta={"reconstructed": True},
            )
            if rebuilt.get(v) is not None or lost_vm.image is None:
                hv.restore(lost_vm, image)
            else:  # functional VM but timing-only parity: revive without bytes
                lost_vm.revive()
            hv.commit_checkpoint(image)
            report.reconstructed[v] = target
            self.tracer.emit(
                sim.now, "diskless.rebuild", vm=v, group=group.group_id,
                target=target,
            )
        # re-home any shard slots this crash emptied
        if self._missing_shard_slots(group):
            yield from self._reencode_shards_scheme(group, report)

    def _reencode_shards_scheme(self, group: RaidGroup, report: DisklessRecoveryReport):
        """Process: re-encode the group's shards, re-homing every slot
        whose node died or whose block is missing/colocated.

        All ``m`` shards are recomputed from the committed member images
        (one encode) but only missing slots get new homes; surviving
        slots keep their nodes and are refreshed in place so the group
        ends the pass fully protected on ``m`` distinct non-member
        nodes.
        """
        sim = self.cluster.sim
        gid = group.group_id
        slots = self._missing_shard_slots(group)
        if not slots:
            return
        member_nodes = {
            self.cluster.vm(v).node_id
            for v in group.member_vm_ids
            if self.cluster.vm(v).node_id is not None
        }
        homes = list(group.parity_nodes)
        for j in slots:
            taken = {h for i, h in enumerate(homes) if i != j}
            avoid = frozenset(
                self.domains.domain_of(h)
                for i, h in enumerate(homes)
                if i != j and self.cluster.node(h).alive
            ) if self.domains is not None else frozenset()
            homes[j] = choose_parity_node(
                self.cluster, self.layout, group,
                exclude=self._recovery_exclude({report.failed_node} | taken),
                domains=self.domains,
                avoid_domains=avoid,
            )
        # gather member images; bail if a member just died too (the queued
        # failure's recovery rebuilds it and re-encodes afterwards)
        payloads = []
        total = 0.0
        for v in group.member_vm_ids:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                return
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                raise RuntimeError(f"vm {v} has no committed checkpoint to re-encode")
            total += vm.memory_bytes
            if img.payload is not None:
                payloads.append(img.payload_flat())
        flows = []
        wire_bytes = 0.0
        for j in slots:
            new_home = homes[j]
            for v in group.member_vm_ids:
                vm = self.cluster.vm(v)
                if vm.node_id != new_home:
                    wire_bytes += vm.memory_bytes
                    flows.append(
                        self._transfer(
                            vm.node_id, new_home, vm.memory_bytes,
                            label=f"reencode.g{gid}.s{j}.vm{v}",
                        )
                    )
        if flows:
            try:
                yield AllOf(sim, flows)
            except NetworkError:
                return
        report.network_bytes += wire_bytes
        for j in slots:
            engine = self._xor_engines[homes[j]]
            req = engine.request()
            yield req
            try:
                yield sim.timeout(total / self.xor_bandwidth)
            finally:
                engine.release()
            report.xor_bytes += total
        functional = len(payloads) == len(group.member_vm_ids) and payloads
        shards = self.scheme.encode(payloads) if functional else None
        member_checksums: dict[int, int] = {}
        if functional:
            for v, p in zip(group.member_vm_ids, payloads):
                member_checksums[v] = block_checksum(p)
        logical = max(self.cluster.vm(v).memory_bytes for v in group.member_vm_ids)
        for j in slots:
            data = shards[j] if shards is not None else None
            block = ParityBlock(
                group_id=shard_key(gid, j),
                epoch=self.committed_epoch,
                member_vm_ids=group.member_vm_ids,
                logical_bytes=logical,
                data=data,
                checksum=None if data is None else block_checksum(data),
                member_checksums=dict(member_checksums),
            )
            self.cluster.node(homes[j]).store_parity(block)
            old_home = self.cluster.node(group.parity_nodes[j])
            if old_home.alive and old_home.node_id != homes[j]:
                old_home.parity_store.pop(shard_key(gid, j), None)
        self.layout.replace_group(
            gid, RaidGroup(gid, group.member_vm_ids, homes[0], tuple(homes[1:]))
        )
        if gid not in report.reencoded_groups:
            report.reencoded_groups.append(gid)
        self.tracer.emit(
            sim.now, "diskless.reencode", group=gid,
            node=homes[slots[0]] if slots else group.parity_node,
        )

    def heal(self):
        """Process: restore layout validity after node repairs.

        Post-recovery placements can be *degraded*: with few nodes the
        only place to restore a rebuilt VM is its group's parity node,
        so one element of slack is gone until the crashed node returns.
        ``heal`` scans for groups whose parity block is co-located with
        a member (or missing/on a dead node) and re-encodes the parity
        onto a strictly valid node when one exists.  Call it at
        checkpoint boundaries once repairs have landed — the
        :class:`~repro.workloads.app.CheckpointedJob` runner does.
        """
        healed: list[int] = []
        if not self._is_xor:
            for group in list(self.layout.groups):
                if not self._missing_shard_slots(group):
                    continue
                report = DisklessRecoveryReport(failed_node=-1)
                try:
                    yield from self._reencode_shards_scheme(group, report)
                except RuntimeError:
                    continue
                healed.append(group.group_id)
            if healed:
                self.tracer.emit(self.cluster.sim.now, "diskless.heal", groups=healed)
            return healed
        for group in list(self.layout.groups):
            pnode = self.cluster.node(group.parity_node)
            member_nodes = {
                self.cluster.vm(v).node_id
                for v in group.member_vm_ids
                if self.cluster.vm(v).node_id is not None
            }
            missing = (not pnode.alive) or group.group_id not in pnode.parity_store
            colocated = group.parity_node in member_nodes
            member_doms = (
                {self.domains.domain_of(m) for m in member_nodes}
                if self.domains is not None
                else set()
            )
            dom_colocated = (
                not missing
                and not colocated
                and self.domains is not None
                and self.domains.domain_of(group.parity_node) in member_doms
            )
            if not (missing or colocated or dom_colocated):
                continue
            # only act when a strictly valid new home exists
            valid = [
                n
                for n in self.cluster.alive_nodes
                if n.node_id not in member_nodes and n.node_id != group.parity_node
            ]
            if dom_colocated:
                # the current home is safe node-wise; move only if a
                # domain-orthogonal home actually exists
                valid = [
                    n for n in valid
                    if self.domains.domain_of(n.node_id) not in member_doms
                ]
                if not valid:
                    continue
            if not valid and not missing:
                continue
            if not valid and missing:
                # parity truly lost and nowhere valid: degrade rather
                # than leave the group unprotected
                pass
            report = DisklessRecoveryReport(failed_node=-1)
            try:
                yield from self._reencode_parity(group, report)
            except RuntimeError:
                continue
            healed.append(group.group_id)
        if healed:
            self.tracer.emit(self.cluster.sim.now, "diskless.heal", groups=healed)
        return healed

    def recover(self, failed_node_id: int):
        """Process: full DVDC recovery after ``failed_node_id`` crashed.

        Phases run concurrently where independent: survivor rollbacks
        (local memory copies), per-group member reconstruction, and
        parity re-encoding.  Returns a
        :class:`~repro.core.recovery.DisklessRecoveryReport`.
        """
        sim = self.cluster.sim
        start = sim.now
        if self.committed_epoch < 0:
            raise RuntimeError("no committed checkpoint epoch to recover from")
        report = DisklessRecoveryReport(failed_node=failed_node_id)

        lost_vms = [
            vm.vm_id
            for vm in self.cluster.all_vms
            if vm.state == VMState.FAILED and vm.node_id is None
        ]
        lost_set = set(lost_vms)
        procs = []
        if self._is_xor:
            # groups that lost a member
            for vm_id in lost_vms:
                group = self.layout.group_of(vm_id)
                others_lost = [v for v in group.member_vm_ids if v in lost_set and v != vm_id]
                if others_lost:
                    raise RuntimeError(
                        f"group {group.group_id} lost {len(others_lost) + 1} members "
                        "— beyond single-parity tolerance"
                    )
                procs.append(sim.process(self._rebuild_member(group, vm_id, report)))
            # groups whose parity block is missing anywhere (this crash, or a
            # re-encode aborted by an earlier overlapping crash) and that
            # lost no member this time
            for group in self.layout.groups:
                if any(v in lost_set for v in group.member_vm_ids):
                    continue
                pnode = self.cluster.node(group.parity_node)
                if (not pnode.alive) or group.group_id not in pnode.parity_store:
                    procs.append(sim.process(self._reencode_parity(group, report)))
        else:
            # general scheme: one recovery process per damaged group,
            # handling any <= tolerance mix of lost members and shards
            lost_by_group: dict[int, list[int]] = {}
            for vm_id in lost_vms:
                group = self.layout.group_of(vm_id)
                lost_by_group.setdefault(group.group_id, []).append(vm_id)
            groups_by_id = {g.group_id: g for g in self.layout.groups}
            for gid, lost in lost_by_group.items():
                procs.append(
                    sim.process(
                        self._recover_group_scheme(groups_by_id[gid], lost, report)
                    )
                )
            for group in self.layout.groups:
                if group.group_id in lost_by_group:
                    continue
                if self._missing_shard_slots(group):
                    procs.append(
                        sim.process(self._reencode_shards_scheme(group, report))
                    )
        # all surviving VMs roll back locally
        for vm_id in self.layout.vm_ids:
            if vm_id not in lost_set:
                procs.append(sim.process(self._rollback_survivor(vm_id, report)))
        if procs:
            yield AllOf(sim, procs)
        report.recovery_time = sim.now - start
        report.restored_epoch = self.committed_epoch
        self.tracer.emit(
            sim.now, "diskless.recovery", node=failed_node_id,
            duration=report.recovery_time, reconstructed=list(report.reconstructed),
        )
        if self.auditor is not None:
            self.auditor.post_recovery(self, report)
        return report
