"""Recovery reports and placement helpers for diskless recovery.

Recovery after a node crash (Section VI's description of the DVDC
failure path): "DVDC requires all nodes to roll back to their previous
checkpoints, compute the failed node's checkpoint from parity and data,
and then resume."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import VirtualCluster
from .groups import GroupLayout, RaidGroup

__all__ = ["DisklessRecoveryReport", "choose_restore_node", "choose_parity_node"]


@dataclass
class DisklessRecoveryReport:
    """Outcome of one diskless recovery pass."""

    failed_node: int
    #: VMs rebuilt from parity (vm_id -> node restored onto)
    reconstructed: dict[int, int] = field(default_factory=dict)
    #: groups whose parity block was re-encoded on a new node
    reencoded_groups: list[int] = field(default_factory=list)
    #: VMs that only rolled back to their local committed checkpoint
    rolled_back: list[int] = field(default_factory=list)
    recovery_time: float = 0.0
    network_bytes: float = 0.0
    xor_bytes: float = 0.0
    restored_epoch: int = -1


def choose_restore_node(
    cluster: VirtualCluster,
    layout: GroupLayout,
    group: RaidGroup,
    exclude: set[int] | None = None,
    domains=None,
) -> int:
    """Pick the node to restore a reconstructed VM onto.

    Preference order: an alive node hosting no member of the same group
    and not the group's parity node (keeps the layout valid), breaking
    ties by current VM count; falls back to any alive non-member node,
    then any alive node (with the caller expected to rebalance).

    With ``domains`` (a :class:`~repro.failures.domains.FailureDomainMap`),
    a stronger tier is tried first: an ideal node whose failure domain
    holds no surviving element of the group — so a geo-spread layout
    stays domain-orthogonal through recovery whenever capacity allows.
    ``domains=None`` is bit-identical to the historical behavior.
    """
    exclude = exclude or set()
    member_nodes = {
        cluster.vm(v).node_id
        for v in group.member_vm_ids
        if cluster.vm(v).node_id is not None
    }
    alive = [n for n in cluster.alive_nodes if n.node_id not in exclude]
    if not alive:
        raise RuntimeError("no alive node to restore onto")

    def load(n):  # VMs hosted, then id for determinism
        return (len(n.vms), n.node_id)

    ideal = [n for n in alive if n.node_id not in member_nodes
             and n.node_id not in group.parity_nodes]
    if domains is not None and ideal:
        taken_domains = {domains.domain_of(m) for m in member_nodes}
        taken_domains |= {
            domains.domain_of(p) for p in group.parity_nodes
            if cluster.node(p).alive
        }
        spread = [n for n in ideal
                  if domains.domain_of(n.node_id) not in taken_domains]
        if spread:
            return min(spread, key=load).node_id
    if ideal:
        return min(ideal, key=load).node_id
    non_member = [n for n in alive if n.node_id not in member_nodes]
    if non_member:
        return min(non_member, key=load).node_id
    return min(alive, key=load).node_id


def choose_parity_node(
    cluster: VirtualCluster,
    layout: GroupLayout,
    group: RaidGroup,
    exclude: set[int] | None = None,
    allow_degraded: bool = True,
    domains=None,
    avoid_domains: frozenset[int] = frozenset(),
) -> int:
    """Pick a replacement parity node: alive, hosting no group member,
    with the lightest current parity load.

    When no non-member node survives (e.g. 4 nodes, group size 3, one
    node down) and ``allow_degraded`` is set, the parity is placed on
    the member node carrying the fewest of this group's members — the
    layout is then *degraded* (that node's failure would cost two
    elements) until the cluster heals and
    :func:`~repro.core.placement.rebalance_after_migration` runs.

    With ``domains`` set, eligible nodes whose failure domain holds no
    surviving group element (and is not in ``avoid_domains`` — the
    domains of sibling parity shards already chosen) are preferred, so
    a domain loss still costs the group at most one element.  The tier
    is a preference, not a filter: when the constraint can't be met the
    historical tie-break applies unchanged.  ``domains=None`` is
    bit-identical to the historical behavior.
    """
    exclude = exclude or set()
    member_count: dict[int, int] = {}
    for v in group.member_vm_ids:
        node = cluster.vm(v).node_id
        if node is not None:
            member_count[node] = member_count.get(node, 0) + 1
    load = layout.parity_load()
    eligible = [
        n
        for n in cluster.alive_nodes
        if n.node_id not in member_count and n.node_id not in exclude
    ]
    if domains is not None and eligible:
        taken_domains = {domains.domain_of(m) for m in member_count}
        taken_domains |= set(avoid_domains)
        spread = [n for n in eligible
                  if domains.domain_of(n.node_id) not in taken_domains]
        if spread:
            return min(
                spread, key=lambda n: (load.get(n.node_id, 0), n.node_id)
            ).node_id
    if eligible:
        return min(eligible, key=lambda n: (load.get(n.node_id, 0), n.node_id)).node_id
    if not allow_degraded:
        raise RuntimeError(f"no eligible parity node for group {group.group_id}")
    fallback = [n for n in cluster.alive_nodes if n.node_id not in exclude]
    if not fallback:
        raise RuntimeError(f"no alive node for parity of group {group.group_id}")
    return min(
        fallback,
        key=lambda n: (member_count.get(n.node_id, 0), load.get(n.node_id, 0), n.node_id),
    ).node_id
