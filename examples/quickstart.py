#!/usr/bin/env python
"""Quickstart: the paper in three acts.

1. Reproduce the Fig. 5 headline analytically: at their optimal
   checkpoint intervals, diskless (DVDC) checkpointing cuts the expected
   completion time of a 2-day job on a 3h-MTBF cluster by ~18% versus
   disk-full checkpointing, with ~1% overhead over the fault-free ideal.
2. Run one functional DVDC checkpoint epoch on a simulated 4-node /
   12-VM cluster (Fig. 4 layout) and show the cost accounting.
3. Kill a node and recover every lost VM bit-exactly from XOR parity.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import dvdc, fig5, paper_scenario
from repro.analysis import format_bytes, format_seconds, render_table


def act1_analytical_headline() -> None:
    print("=" * 72)
    print("Act 1 — Fig. 5, analytically (MTBF 3h, job 2 days, 4 nodes, 12 VMs)")
    print("=" * 72)
    result = fig5()
    rows = []
    for series in (result.diskful, result.diskless):
        o = series.optimum
        rows.append(
            [
                series.method,
                format_seconds(o.interval),
                format_seconds(o.overhead_at_optimum),
                f"{o.expected_ratio:.4f}",
                f"{series.overhead_ratio * 100:.2f}%",
            ]
        )
    print(render_table(
        ["method", "optimal interval", "T_ov at optimum", "E[T]/T", "overhead"],
        rows,
    ))
    print(f"\n  -> diskless reduces expected completion time by "
          f"{result.reduction * 100:.1f}% (paper: 18%)\n")


def act2_functional_epoch():
    print("=" * 72)
    print("Act 2 — one DVDC checkpoint epoch on a functional cluster")
    print("=" * 72)
    sc = paper_scenario(seed=1)
    ck = dvdc(sc.cluster)
    print("RAID groups (members -> parity node):")
    for g in ck.layout.groups:
        nodes = [sc.cluster.vm(v).node_id for v in g.member_vm_ids]
        print(f"  group {g.group_id}: VMs {list(g.member_vm_ids)} on nodes "
              f"{nodes} -> parity on node {g.parity_node}")

    result = {}

    def run():
        result["cycle"] = yield from ck.run_cycle()

    sc.sim.run_processes(run())
    r = result["cycle"]
    print(f"\nepoch {r.epoch}: overhead (guest pause) = {format_seconds(r.overhead)}"
          f", latency (usable) = {format_seconds(r.latency)}")
    print(f"network traffic = {format_bytes(r.network_bytes)}, "
          f"XOR work spread over nodes: "
          f"{ {n: format_seconds(t) for n, t in sorted(r.xor_seconds_by_node.items())} }\n")
    return sc, ck


def act3_failure_and_recovery(sc, ck) -> None:
    print("=" * 72)
    print("Act 3 — node crash and bit-exact parity recovery")
    print("=" * 72)
    rng = np.random.default_rng(0)
    committed = {}
    for vm in sc.cluster.all_vms:
        committed[vm.vm_id] = (
            sc.cluster.hypervisor(vm.node_id).committed(vm.vm_id)
            .payload_flat().copy()
        )
        # work happens after the checkpoint (it will be rolled back)
        vm.image.touch_pages(rng.integers(0, vm.image.n_pages, 5), rng)

    lost = sc.cluster.kill_node(2)
    print(f"node 2 crashed: lost VMs {[vm.vm_id for vm in lost]} "
          "(their memory, checkpoints, and parity are gone)")

    result = {}

    def run():
        result["rec"] = yield from ck.recover(2)

    sc.sim.run_processes(run())
    rep = result["rec"]
    print(f"recovery took {format_seconds(rep.recovery_time)}: "
          f"reconstructed {dict(rep.reconstructed)} (vm -> new node), "
          f"{len(rep.rolled_back)} survivors rolled back in-memory")

    ok = all(
        np.array_equal(vm.image.flat, committed[vm.vm_id])
        for vm in sc.cluster.all_vms
    )
    print(f"bit-exact verification: {'PASS' if ok else 'FAIL'} — every VM "
          "matches its last committed checkpoint")
    assert ok


if __name__ == "__main__":
    act1_analytical_headline()
    sc, ck = act2_functional_epoch()
    act3_failure_and_recovery(sc, ck)
