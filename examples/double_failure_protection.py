#!/usr/bin/env python
"""Double-failure protection with RDP — past the paper's XOR scheme.

Section II-B2 notes that Wang et al. extended diskless checkpointing
with Row-Diagonal Parity to tolerate two simultaneous failures.  This
example runs that extension end to end on a 6-node cluster:

1. one RDP checkpoint epoch (each group's row AND diagonal parity land
   on two distinct non-member nodes);
2. a *simultaneous two-node crash* — the scenario single-parity DVDC
   cannot survive;
3. full bit-exact recovery of every lost VM;
4. the cost comparison: what the extra nine of protection buys and costs.

Run:  python examples/double_failure_protection.py
"""

import numpy as np

from repro import ClusterSpec, VirtualCluster
from repro.analysis import format_bytes, format_seconds, render_table
from repro.core import (
    DoubleParityCheckpointer,
    build_double_parity_layout,
    dvdc,
)
from repro.sim import Simulator

GB = 1e9


def build_cluster(seed: int):
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=6))
    rng = np.random.default_rng(seed)
    for vm in cluster.create_vms_balanced(12, GB, image_pages=32, page_size=128):
        vm.image.write(0, rng.integers(0, 256, 2048, dtype=np.uint8))
        vm.image.clear_dirty()
    return sim, cluster, rng


def main() -> None:
    sim, cluster, rng = build_cluster(seed=11)
    layout = build_double_parity_layout(cluster, group_size=3)
    ck = DoubleParityCheckpointer(cluster, layout)

    print("RDP groups (members -> row parity node, diagonal parity node):")
    for g in layout.groups:
        nodes = [cluster.vm(v).node_id for v in g.member_vm_ids]
        print(f"  group {g.group_id}: VMs {list(g.member_vm_ids)} on nodes "
              f"{nodes} -> row@{g.row_parity_node}, diag@{g.diag_parity_node}")

    out = {}

    def epoch():
        out["r"] = yield from ck.run_cycle()

    sim.run_processes(epoch())
    r = out["r"]
    print(f"\nRDP epoch: overhead {format_seconds(r.overhead)}, latency "
          f"{format_seconds(r.latency)}, traffic {format_bytes(r.network_bytes)} "
          "(each image ships to two parity nodes)")

    committed = {
        vm.vm_id: cluster.hypervisor(vm.node_id).committed(vm.vm_id)
        .payload_flat().copy()
        for vm in cluster.all_vms
    }
    for vm in cluster.all_vms:
        vm.image.touch_pages(rng.integers(0, 32, 4), rng)

    # the killer scenario: two nodes die in the same instant
    lost_a = cluster.kill_node(1)
    lost_b = cluster.kill_node(4)
    lost_ids = sorted(vm.vm_id for vm in lost_a + lost_b)
    print(f"\nnodes 1 and 4 crashed simultaneously: lost VMs {lost_ids}")
    for g in layout.groups:
        losses = sum(
            1 for v in g.member_vm_ids if cluster.vm(v).node_id is None
        )
        losses += sum(1 for n in g.parity_nodes if not cluster.node(n).alive)
        print(f"  group {g.group_id} lost {losses} shard(s)"
              f"{' — beyond XOR, within RDP' if losses == 2 else ''}")

    def recover():
        out["rep"] = yield from ck.recover(1, 4)

    sim.run_processes(recover())
    rep = out["rep"]
    print(f"\nrecovery: {format_seconds(rep.recovery_time)}; reconstructed "
          f"{dict(rep.reconstructed)}; re-encoded groups {rep.reencoded_groups}")

    ok = all(
        np.array_equal(vm.image.flat, committed[vm.vm_id])
        for vm in cluster.all_vms
    )
    print(f"bit-exact verification: {'PASS' if ok else 'FAIL'}")
    assert ok

    # cost comparison vs single-parity DVDC on an equivalent cluster
    sim2, cluster2, _ = build_cluster(seed=12)
    ck_xor = dvdc(cluster2, group_size=3)
    out2 = {}

    def epoch2():
        out2["r"] = yield from ck_xor.run_cycle()

    sim2.run_processes(epoch2())
    r_xor = out2["r"]
    rows = [
        ["XOR (paper)", "1 node crash", format_bytes(r_xor.network_bytes),
         format_bytes(4 * GB), format_seconds(r_xor.latency)],
        ["RDP (this example)", "ANY 2 node crashes", format_bytes(r.network_bytes),
         format_bytes(8 * GB), format_seconds(r.latency)],
    ]
    print()
    print(render_table(
        ["code", "tolerates", "epoch traffic", "parity memory", "epoch latency"],
        rows,
        title="Protection vs cost (12 x 1 GB VMs, group size 3)",
    ))
    print("\nRDP doubles checkpoint traffic and parity memory in exchange "
          "for surviving any simultaneous pair of node crashes.")


if __name__ == "__main__":
    main()
