#!/usr/bin/env python
"""Tour of the three diskless architectures (Figs. 1, 3, 4) plus Remus.

Builds each architecture on an equivalent cluster, runs one checkpoint
epoch, and compares where the time goes — the narrative of Section IV:
the first-shot design wastes a node and serializes on it; a dedicated
checkpoint node restores multi-VM density but keeps the fan-in; DVDC
distributes both traffic and XOR work.  Remus (Section VI) is shown as
the replication alternative: minimal lost work, but a full standby
image per protected VM.

Run:  python examples/architecture_tour.py
"""

import numpy as np

from repro import ClusterSpec, VirtualCluster
from repro.analysis import format_bytes, format_seconds, render_table
from repro.checkpoint import RemusModel
from repro.core import checkpoint_node, dvdc, first_shot
from repro.sim import Simulator

GB = 1e9


def _functional_vm(cluster, node, rng):
    vm = cluster.create_vm(node, GB, dirty_rate=2e5, image_pages=16, page_size=64)
    vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
    vm.image.clear_dirty()
    return vm


def run_epoch(ck, sim):
    out = {}

    def proc():
        out["r"] = yield from ck.run_cycle()

    sim.run_processes(proc())
    return out["r"]


def build_fig1():
    """Fig. 1: 3 compute nodes x 1 VM + 1 dedicated parity node."""
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
    rng = np.random.default_rng(1)
    for node in range(3):
        _functional_vm(cluster, node, rng)
    return sim, cluster, first_shot(cluster)


def build_fig3():
    """Fig. 3: 3 compute nodes x 3 VMs + 1 dedicated checkpoint node."""
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
    rng = np.random.default_rng(2)
    for node in range(3):
        for _ in range(3):
            _functional_vm(cluster, node, rng)
    return sim, cluster, checkpoint_node(cluster, node_id=3)


def build_fig4():
    """Fig. 4: 4 compute nodes x 3 VMs, rotating parity — DVDC."""
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
    rng = np.random.default_rng(3)
    for i in range(12):
        _functional_vm(cluster, i % 4, rng)
    return sim, cluster, dvdc(cluster)


def main() -> None:
    rows = []
    for label, builder in (
        ("Fig.1 first-shot (3 VMs)", build_fig1),
        ("Fig.3 ckpt node (9 VMs)", build_fig3),
        ("Fig.4 DVDC     (12 VMs)", build_fig4),
    ):
        sim, cluster, ck = builder()
        r = run_epoch(ck, sim)
        n_vms = len(cluster.all_vms)
        busiest = max(r.xor_seconds_by_node.values())
        rows.append([
            label,
            n_vms,
            len(ck.layout),
            format_seconds(r.overhead),
            format_seconds(r.latency),
            format_bytes(r.network_bytes),
            f"{busiest / max(r.total_xor_seconds, 1e-12) * 100:.0f}%",
            format_seconds(r.latency / n_vms),
        ])
    print(render_table(
        ["architecture", "VMs", "groups", "overhead", "latency",
         "traffic", "XOR on busiest node", "latency/VM"],
        rows,
        title="One checkpoint epoch per architecture (1 GB VMs, GbE)",
    ))
    print("""
Reading:
 * Fig.1 protects 3 VMs and pushes every image through one parity node.
 * Fig.3 protects 9, but the dedicated node's rx link and XOR engine
   serialize the epoch (100% of parity work on one node).
 * Fig.4 protects 12 and still finishes fastest per VM: traffic rides
   every NIC and parity work splits evenly — Section IV-B's claim.
""")

    # Remus comparison (Section VI)
    m = RemusModel(epoch_length=25e-3, bandwidth=125e6)
    rows = []
    for dirty_mb in (1.0, 10.0, 50.0, 125.0, 200.0):
        rate = dirty_mb * 1e6
        rows.append([
            f"{dirty_mb:g} MB/s",
            f"{m.overhead_fraction(rate, GB) * 100:.1f}%",
            format_seconds(m.speculation_loss()),
            format_bytes(m.standby_memory_bytes(GB)),
        ])
    print(render_table(
        ["VM dirty rate", "runtime overhead", "lost work on failover",
         "standby memory/VM"],
        rows,
        title="Remus active/standby at 40 Hz epochs (the Section VI comparator)",
    ))
    print("""
Remus loses almost nothing at failover (~1.5 epochs) but pays a
continuous overhead that grows with the dirty rate and a full standby
image per VM; DVDC stores one parity image per RAID group and pays only
at checkpoint instants — the trade-off Section VI describes.""")


if __name__ == "__main__":
    main()
