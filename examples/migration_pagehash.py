#!/usr/bin/env python
"""Live migration and page-hash dedup — the conclusion's future work.

Shows (a) the pre-copy convergence behaviour live migration exhibits as
the guest's dirty rate approaches the link bandwidth, and (b) the
paper's closing idea: "using page hashes to speed up live migration
when similar VMs reside at the host destination" — quantified with
functional memory images that share a guest OS base.

Run:  python examples/migration_pagehash.py
"""

import numpy as np

from repro import ClusterSpec, VirtualCluster
from repro.analysis import format_bytes, format_seconds, render_table
from repro.cluster import MemoryImage
from repro.migration import (
    PageHashIndex,
    PrecopyModel,
    live_migrate,
    plan_dedup_transfer,
)
from repro.sim import Simulator

GB = 1e9


def precopy_convergence() -> None:
    model = PrecopyModel(bandwidth=125e6, downtime_target_bytes=1e6)
    rows = []
    for dirty_mb in (0, 5, 25, 60, 100, 120, 150):
        r = model.estimate(1 * GB, dirty_mb * 1e6)
        rows.append([
            f"{dirty_mb} MB/s",
            f"{model.rho(dirty_mb * 1e6):.2f}",
            r.rounds,
            format_bytes(r.total_bytes),
            format_seconds(r.total_time),
            format_seconds(r.downtime),
            "yes" if r.converged else "NO (stop-and-copy forced)",
        ])
    print(render_table(
        ["dirty rate", "rho", "rounds", "traffic", "total time",
         "downtime", "converged"],
        rows,
        title="Pre-copy live migration of a 1 GB VM over GbE (Clark et al.)",
    ))
    print()


def simulated_migration() -> None:
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
    vm = cluster.create_vm(0, 1 * GB, dirty_rate=10e6)
    out = {}

    def proc():
        out["r"] = yield from live_migrate(cluster, vm, 1)

    sim.run_processes(proc())
    r = out["r"]
    print(f"simulated migration: vm0 node0->node1 in "
          f"{format_seconds(r.total_time)} ({r.rounds} rounds, "
          f"{format_bytes(r.total_bytes)} moved, downtime "
          f"{format_seconds(r.downtime)})\n")


def pagehash_dedup() -> None:
    rng = np.random.default_rng(42)
    page_size, n_pages = 256, 512

    # a "guest OS base" shared by every VM in the cluster
    os_base = rng.integers(0, 256, (n_pages, page_size), dtype=np.uint8)

    def make_vm_image(unique_fraction: float) -> MemoryImage:
        img = MemoryImage(n_pages, page_size)
        img.pages[:] = os_base
        n_unique = int(n_pages * unique_fraction)
        if n_unique:
            idx = rng.choice(n_pages, n_unique, replace=False)
            img.pages[idx] = rng.integers(
                0, 256, (n_unique, page_size), dtype=np.uint8
            )
        img.clear_dirty()
        return img

    # destination already hosts two similar VMs
    destination_index = PageHashIndex()
    for _ in range(2):
        destination_index.add_image(make_vm_image(unique_fraction=0.3))

    rows = []
    for uniq in (0.1, 0.3, 0.5, 0.8, 1.0):
        source = make_vm_image(unique_fraction=uniq)
        plan = plan_dedup_transfer(source.pages, destination_index)
        raw = source.nbytes
        rows.append([
            f"{uniq * 100:.0f}%",
            format_bytes(raw),
            format_bytes(plan.total_bytes),
            f"{plan.dedup_fraction * 100:.0f}%",
            f"{raw / max(plan.total_bytes, 1):.1f}x",
        ])
    print(render_table(
        ["source unique pages", "raw image", "wire bytes (dedup)",
         "pages satisfied locally", "speedup"],
        rows,
        title="Page-hash dedup migrating onto a host with similar VMs "
              "(conclusion's future work)",
    ))
    print("\nVMs cloned from the same template share most cold pages, so "
          "the destination index satisfies them without network transfer.")


if __name__ == "__main__":
    precopy_convergence()
    simulated_migration()
    pagehash_dedup()
