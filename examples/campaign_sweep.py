#!/usr/bin/env python
"""Campaign orchestration: a Fig. 5-style sweep, parallel and resumable.

1. Declare the Fig. 5 interval sweep as a campaign (`Sweep` → tasks),
   run it serially and with a 2-way process fan-out, and verify the two
   are bit-identical — the deterministic-seeding guarantee.
2. Attach an on-disk `ResultStore` and run the campaign twice: the
   second invocation executes zero tasks (pure cache hits), the resume
   guarantee.
3. Aggregate the cached task values back into the standard Fig. 5
   optima table.

Run:  python examples/campaign_sweep.py [--points 60] [--jobs 2]
"""

import argparse
import tempfile

import numpy as np

from repro.analysis import format_seconds, render_table
from repro.campaign import (
    CampaignRunner,
    ResultStore,
    fig5_result_from_values,
    fig5_sweep,
    run_fig5_campaign,
)
from repro.model import DISKFUL_PAPER, DISKLESS_PAPER, PAPER_CLUSTER


def act1_parallel_equals_serial(points: int, jobs: int) -> None:
    print("=" * 72)
    print(f"Act 1 — {points}-point Fig. 5 sweep: serial vs {jobs}-way fan-out")
    print("=" * 72)
    serial, serial_run = run_fig5_campaign(jobs=1, points=points)
    parallel, parallel_run = run_fig5_campaign(jobs=jobs, points=points)
    print(serial_run.summary_table("serial campaign"))
    print(parallel_run.summary_table(f"{jobs}-way campaign"))
    assert np.array_equal(serial.diskless.ratios, parallel.diskless.ratios)
    assert np.array_equal(serial.diskful.ratios, parallel.diskful.ratios)
    print("PASS: parallel series bit-identical to serial\n")


def act2_resume(points: int, store_dir: str) -> ResultStore:
    print("=" * 72)
    print("Act 2 — resumable store: second run executes zero tasks")
    print("=" * 72)
    store = ResultStore(store_dir)
    sweep = fig5_sweep(points=points)
    cold = CampaignRunner(store=store, jobs=1).run(sweep.expand())
    warm = CampaignRunner(store=store, jobs=1).run(sweep.expand())
    print(cold.summary_table("cold run"))
    print(warm.summary_table("warm run (resumed)"))
    assert cold.n_executed == cold.n_total
    assert warm.n_executed == 0 and warm.n_cached == warm.n_total
    print(f"PASS: resume served {warm.n_cached}/{warm.n_total} tasks "
          f"from {store.path}\n")
    return store


def act3_aggregate(store: ResultStore) -> None:
    print("=" * 72)
    print("Act 3 — aggregate cached task values into the Fig. 5 table")
    print("=" * 72)
    sweep = fig5_sweep(points=len(store.records("fig5_point")) // 2)
    result = fig5_result_from_values(
        [rec["value"] for rec in store.records("fig5_point")],
        lam=sweep.base["lam"],
        T=sweep.base["T"],
        cluster=PAPER_CLUSTER,
        diskful_cfg=DISKFUL_PAPER,
        diskless_cfg=DISKLESS_PAPER,
    )
    rows = [
        [
            s.method,
            format_seconds(s.optimum.interval),
            f"{s.min_ratio:.4f}",
            f"{s.overhead_ratio * 100:.2f}%",
        ]
        for s in (result.diskful, result.diskless)
    ]
    print(render_table(
        ["method", "optimal interval", "min E[T]/T", "overhead"],
        rows,
        title="Fig. 5 optima, rebuilt from the result store",
    ))
    print(f"\ndiskless reduces expected completion time by "
          f"{result.reduction * 100:.1f}% (paper: ~18%)")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--points", type=int, default=60,
                    help="interval grid points")
    ap.add_argument("--jobs", type=int, default=2,
                    help="parallel workers for act 1")
    args = ap.parse_args()
    act1_parallel_equals_serial(args.points, args.jobs)
    with tempfile.TemporaryDirectory() as tmp:
        store = act2_resume(args.points, tmp)
        act3_aggregate(store)


if __name__ == "__main__":
    main()
