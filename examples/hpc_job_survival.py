#!/usr/bin/env python
"""An HPC job surviving repeated node failures — DVDC vs disk-full.

Simulates the paper's motivating workload end to end: a long-running,
gang-scheduled parallel job on the Fig. 4 cluster (4 nodes, 12 VMs),
with Poisson node failures injected from a *shared* failure trace so
the two checkpointing methods face exactly the same crashes (common
random numbers).  VM memories are functional: real pages are dirtied by
a hot/cold working-set process, every checkpoint moves real deltas, and
every recovery is verified bit-exact.

Run:  python examples/hpc_job_survival.py [--work HOURS] [--seeds N]
"""

import argparse

from repro import DiskfulCheckpointer, dvdc
from repro.analysis import format_seconds, render_table, render_timeline
from repro.sim import Tracer
from repro.checkpoint import IncrementalCapture
from repro.failures import Exponential, FailureInjector, FailureSchedule
from repro.workloads import (
    CheckpointedJob,
    HotColdDirty,
    drive_vm,
    paper_scenario,
)


def run_one(kind: str, seed: int, work: float, interval: float,
            node_mtbf: float, repair: float, tracer: Tracer | None = None):
    tracer = tracer if tracer is not None else Tracer(enabled=False)
    sc = paper_scenario(seed=seed, functional=True, tracer=tracer)
    # one shared trace per seed: both methods see identical crashes
    trace_rng = sc.rngs.stream("failure-trace")
    schedule = FailureSchedule.draw(
        trace_rng, Exponential(1.0 / node_mtbf), sc.cluster.n_nodes,
        horizon=work * 10, repair_time=repair,
    )
    injector = FailureInjector(sc.sim, sc.cluster.n_nodes, schedule=schedule)

    if kind == "dvdc":
        ck = dvdc(sc.cluster, strategy=IncrementalCapture(), tracer=tracer)
    else:
        ck = DiskfulCheckpointer(sc.cluster, tracer=tracer)

    # drive real dirty pages into every VM
    for vm in sc.vms:
        pattern = HotColdDirty(vm.image.n_pages, hot_fraction=0.15, hot_weight=0.85)
        sc.sim.process(
            drive_vm(sc.sim, vm, pattern, sc.rngs.stream(f"dirty/{vm.vm_id}"),
                     touches_per_second=2.0, step=5.0)
        )

    job = CheckpointedJob(sc.cluster, ck, work=work, interval=interval,
                          injector=injector, repair_time=repair)
    injector.start()
    proc = job.start()
    sc.sim.run(until=work * 20)
    if proc.ok is False:
        raise proc.value
    return job.result


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--work", type=float, default=4.0, help="job length, hours")
    ap.add_argument("--seeds", type=int, default=3, help="replications")
    ap.add_argument("--interval", type=float, default=600.0, help="ckpt interval, s")
    ap.add_argument("--node-mtbf", type=float, default=4.0, help="per-node MTBF, h")
    args = ap.parse_args()

    work = args.work * 3600.0
    rows = []
    for seed in range(args.seeds):
        for kind in ("dvdc", "diskful"):
            r = run_one(kind, seed, work, args.interval,
                        args.node_mtbf * 3600.0, repair=30.0)
            rows.append([
                seed,
                kind,
                "yes" if r.completed else f"LOST ({r.failure_reason})",
                f"{r.time_ratio:.3f}",
                r.n_failures,
                r.n_recoveries,
                format_seconds(r.checkpoint_time),
                format_seconds(r.recovery_time),
                format_seconds(r.lost_work),
            ])
    print(render_table(
        ["seed", "method", "completed", "T/T_ideal", "failures",
         "recoveries", "ckpt time", "recovery time", "lost work"],
        rows,
        title=f"{args.work:.0f}h job, interval {args.interval:.0f}s, "
              f"node MTBF {args.node_mtbf:.0f}h (cluster MTBF "
              f"{args.node_mtbf / 4:.1f}h), shared failure traces",
    ))
    print("\nReading: identical failure traces per seed — every second of "
          "difference is checkpoint/recovery cost, the paper's Fig. 5 story "
          "at system level.")

    # one traced run rendered as a timeline
    tracer = Tracer()
    run_one("dvdc", 0, work, args.interval, args.node_mtbf * 3600.0, 30.0,
            tracer=tracer)
    print()
    print(render_timeline(
        tracer, width=70,
        title="Timeline of seed-0 DVDC run (c=checkpoint X=failure "
              "R=recovery +=repair h=heal):",
    ))


if __name__ == "__main__":
    main()
