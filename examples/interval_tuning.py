#!/usr/bin/env python
"""Checkpoint-interval tuning: the Fig. 5 curve, optima, and the
adaptive policy.

Sweeps the checkpoint interval for both methods at several cluster MTBF
operating points, renders the Fig. 5 curve as ASCII, cross-checks the
searched optimum against Young's and Daly's closed forms, and shows the
adaptive (cost-benefit) policy converging to the same answer online.

Run:  python examples/interval_tuning.py
"""


from repro.analysis import ascii_plot, format_seconds, render_table
from repro.checkpoint import AdaptivePolicy
from repro.failures import PAPER_LAMBDA
from repro.model import (
    ClusterModel,
    daly_interval,
    diskless_costs,
    fig5,
    young_interval,
)


def figure5_ascii() -> None:
    result = fig5()
    mask = result.diskful.ratios < 2.0  # clip the blow-up at tiny intervals
    print(ascii_plot(
        [
            ("diskless", result.diskless.intervals[mask],
             result.diskless.ratios[mask]),
            ("diskful", result.diskful.intervals[mask],
             result.diskful.ratios[mask]),
        ],
        logx=True,
        title="Fig. 5 — expected time ratio vs checkpoint interval "
              "(X = optimal intervals)",
        marks=[
            (result.diskless.optimum.interval, result.diskless.min_ratio),
            (result.diskful.optimum.interval, result.diskful.min_ratio),
        ],
    ))
    print()


def mtbf_sensitivity() -> None:
    rows = []
    for mtbf_h in (0.5, 1.0, 3.0, 6.0, 12.0, 24.0):
        lam = 1.0 / (mtbf_h * 3600.0)
        r = fig5(lam=lam)
        rows.append([
            f"{mtbf_h:g}h",
            format_seconds(r.diskful.optimum.interval),
            f"{r.diskful.min_ratio:.3f}",
            format_seconds(r.diskless.optimum.interval),
            f"{r.diskless.min_ratio:.3f}",
            f"{r.reduction * 100:.1f}%",
        ])
    print(render_table(
        ["cluster MTBF", "diskful N*", "diskful E[T]/T",
         "diskless N*", "diskless E[T]/T", "reduction"],
        rows,
        title="Sensitivity to the failure rate (job = 2 days)",
    ))
    print("\nThe diskless advantage *grows* as MTBF shrinks — the paper's "
          "motivating trend (Section I).\n")


def closed_form_crosscheck() -> None:
    result = fig5()
    rows = []
    for series in (result.diskful, result.diskless):
        t_ov = series.optimum.overhead_at_optimum
        rows.append([
            series.method,
            format_seconds(series.optimum.interval),
            format_seconds(young_interval(PAPER_LAMBDA, t_ov)),
            format_seconds(daly_interval(PAPER_LAMBDA, t_ov)),
        ])
    print(render_table(
        ["method", "searched N*", "Young sqrt(2*Tov/lambda)", "Daly"],
        rows,
        title="Optimum cross-check against first-order closed forms",
    ))
    print()


def adaptive_policy_demo() -> None:
    cluster = ClusterModel()

    def cost_of(dirty_bytes: float) -> float:
        # reuse the diskless pipeline: dirty bytes -> overhead seconds
        interval_equiv = dirty_bytes / max(cluster.vm_dirty_rate, 1.0)
        return diskless_costs(cluster, interval_equiv).overhead

    policy = AdaptivePolicy(PAPER_LAMBDA, cost_of, min_interval=1.0)
    fire_at = policy.next_check_time(dirty_rate=cluster.vm_dirty_rate,
                                     resolution=0.5)
    static = fig5().diskless.optimum.interval
    print("Adaptive (cost-benefit) policy, Section II-B1:")
    print(f"  online rule fires after {format_seconds(fire_at)} "
          f"(static optimum: {format_seconds(static)})")
    rel = abs(fire_at - static) / static
    print(f"  agreement with the offline optimum: {100 * (1 - rel):.0f}%\n")


if __name__ == "__main__":
    figure5_ascii()
    mtbf_sensitivity()
    closed_form_crosscheck()
    adaptive_policy_demo()
