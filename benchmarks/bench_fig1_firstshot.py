"""FIG1 — the first-shot architecture: one VM per node, N data nodes
fanning their checkpoints into one dedicated parity node (Section IV-A).

Regenerates: cost of one coordinated checkpoint epoch and of a
single-node failure recovery under the Fig. 1 layout, showing the
fan-in serialization the later architectures eliminate.
"""

import numpy as np

from repro.analysis import format_bytes, format_seconds, render_table
from repro.core import first_shot

from conftest import functional_cluster, run_to_completion


def _build(n_data_nodes: int = 3):
    sim, cluster = functional_cluster(n_data_nodes + 1, 1, seed=11)
    # the spare (highest) node holds parity: move its VM off
    spare = n_data_nodes
    for vm in list(cluster.vms_on(spare)):
        cluster.node(spare).evict(vm)
        del cluster.vms[vm.vm_id]
    return sim, cluster


def _epoch(n_data_nodes: int = 3):
    sim, cluster = _build(n_data_nodes)
    ck = first_shot(cluster)
    r = run_to_completion(sim, ck.run_cycle())
    return sim, cluster, ck, r


def test_fig1_checkpoint_epoch(benchmark, report):
    r = benchmark(lambda: _epoch()[3])
    rows = [[
        "first-shot (3+1)",
        format_seconds(r.overhead),
        format_seconds(r.latency),
        format_bytes(r.network_bytes),
        list(r.xor_seconds_by_node),
    ]]
    report(render_table(
        ["architecture", "overhead", "latency", "traffic", "parity nodes"],
        rows,
        title="FIG1 — one epoch, one VM per node, dedicated parity node",
    ))
    # all parity work on the single spare node
    assert list(r.xor_seconds_by_node) == [3]
    # fan-in: 3 x 1 GB into one GbE rx ~ 24 s (serialized), not ~8 s
    assert r.latency > 20.0


def test_fig1_recovery(benchmark, report):
    def scenario():
        sim, cluster, ck, _ = _epoch()
        committed = {
            vm.vm_id: cluster.hypervisor(vm.node_id)
            .committed(vm.vm_id).payload_flat().copy()
            for vm in cluster.all_vms
        }
        cluster.kill_node(0)
        rep = run_to_completion(sim, ck.recover(0))
        ok = all(
            np.array_equal(cluster.vm(v).image.flat, committed[v])
            for v in committed
        )
        return rep, ok

    rep, ok = benchmark(scenario)
    report(
        f"FIG1 recovery: node 0 died; vm reconstructed on node "
        f"{rep.reconstructed.get(0)} in {format_seconds(rep.recovery_time)}; "
        f"bit-exact = {ok}"
    )
    assert ok
    assert 0 in rep.reconstructed
