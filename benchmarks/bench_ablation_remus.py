"""ABL-REMUS — the Section VI comparison: DVDC vs Remus.

Regenerates the qualitative trade-off table the related-work section
argues: Remus resumes instantly after failure (losing only ~1.5 epochs
of speculative work) but pays a continuous replication overhead and a
full standby image per VM; DVDC pays at checkpoint instants, stores one
parity image per group, and must roll the cluster back on failure.
"""


from repro.analysis import format_bytes, format_seconds, render_table
from repro.checkpoint import RemusModel, RemusPair
from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import dvdc
from repro.model import (
    ClusterModel,
    PAPER_JOB_SECONDS,
    find_optimal_interval,
    overhead_function,
)
from repro.failures import PAPER_LAMBDA
from repro.sim import Simulator

from conftest import functional_cluster, run_to_completion

GB = 1e9


def test_remus_vs_dvdc_tradeoff_table(benchmark, report):
    """Steady-state overhead + failure cost for both schemes across
    dirty rates (12 x 1 GB VMs, GbE)."""

    def build():
        rows = []
        remus = RemusModel(epoch_length=25e-3, bandwidth=125e6)
        cluster = ClusterModel()
        for dirty_mb in (0.2, 2.0, 20.0, 100.0):
            rate = dirty_mb * 1e6
            m = cluster.with_(vm_dirty_rate=rate)
            opt = find_optimal_interval(
                PAPER_LAMBDA, PAPER_JOB_SECONDS,
                overhead_function(m, "diskless"),
            )
            dvdc_overhead_frac = opt.expected_ratio - 1.0
            dvdc_loss = opt.interval / 2.0  # mean rollback at failure
            remus_frac = remus.overhead_fraction(rate, GB)
            rows.append((
                dirty_mb, remus_frac, remus.speculation_loss(),
                dvdc_overhead_frac, dvdc_loss,
            ))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = [
        [
            f"{d:g} MB/s",
            f"{rf * 100:.1f}%",
            format_seconds(rl),
            f"{df * 100:.2f}%",
            format_seconds(dl),
        ]
        for d, rf, rl, df, dl in rows
    ]
    report(render_table(
        ["VM dirty rate", "Remus overhead", "Remus loss@failure",
         "DVDC overhead (optimal N)", "DVDC loss@failure"],
        table,
        title="ABL-REMUS — runtime overhead vs lost work (Section VI)",
    ))
    # the qualitative shape: Remus loses less at failure, DVDC runs cheaper
    for d, rf, rl, df, dl in rows:
        assert rl < dl  # Remus failure loss always smaller
    assert rows[0][3] < rows[0][1]  # DVDC cheaper at low dirty rates

    # memory cost comparison: full standby image per VM vs parity per group
    remus_mem = 12 * GB
    dvdc_mem = 4 * GB  # 4 groups x 1 parity image
    report(
        f"standby memory for 12 x 1 GB VMs: Remus {format_bytes(remus_mem)} "
        f"vs DVDC parity {format_bytes(dvdc_mem)} (+ local checkpoints)"
    )


def test_remus_failover_vs_dvdc_recovery_sim(benchmark, report):
    """Simulated failure handling: Remus failover is instant; DVDC must
    roll back and XOR-rebuild."""

    def scenario():
        # Remus pair
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(0, GB, dirty_rate=5e6)
        pair = RemusPair(cluster, vm, standby_node_id=1,
                         model=RemusModel(epoch_length=0.05, bandwidth=125e6))
        proc = sim.process(pair.protect())
        sim.run(until=2.0)
        cluster.kill_node(0)
        proc.interrupt()
        sim.run()
        t0 = sim.now
        lost = pair.failover()
        remus_resume = sim.now - t0  # instantaneous

        # DVDC recovery on the paper cluster
        sim2, cluster2 = functional_cluster(4, 3, seed=5)
        ck = dvdc(cluster2)
        run_to_completion(sim2, ck.run_cycle())
        cluster2.kill_node(0)
        t1 = sim2.now
        rep = run_to_completion(sim2, ck.recover(0))
        return lost, remus_resume, rep.recovery_time

    lost, remus_resume, dvdc_recovery = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    report(
        f"ABL-REMUS failure handling: Remus resumes in "
        f"{format_seconds(remus_resume)} losing {format_seconds(lost)} of "
        f"speculation; DVDC recovery takes {format_seconds(dvdc_recovery)} "
        "(rollback + reconstruction) — the Section VI distinction."
    )
    assert remus_resume == 0.0
    assert dvdc_recovery > 1.0
