"""FIG5 / TAB-MODEL — the headline: expected-time ratio vs checkpoint
interval, diskless vs disk-full, optima marked (Fig. 5, Section V-B).

Paper numbers at the operating point (MTBF 3 h, T = 2 days, 4 physical
machines, 12 VMs, 40 ms base overhead):

* diskless cuts expected completion time by ~18% over disk-based;
* diskless overhead ratio ~1% above the fault-free ideal;
* disk-full "adds nearly 20% to the total execution time".
"""

import numpy as np

from repro.analysis import ascii_plot, format_seconds, render_table
from repro.model import fig5


def _report_text(result) -> str:
    rows = []
    for s in (result.diskful, result.diskless):
        rows.append([
            s.method,
            format_seconds(s.optimum.interval),
            format_seconds(s.optimum.overhead_at_optimum),
            f"{s.min_ratio:.4f}",
            f"{s.overhead_ratio * 100:.2f}%",
        ])
    table = render_table(
        ["method", "N* (optimal interval)", "T_ov(N*)", "min E[T]/T",
         "overhead ratio"],
        rows,
        title="FIG5 minima ('X' marks)",
    )
    mask = result.diskful.ratios < 2.0
    plot = ascii_plot(
        [
            ("diskless", result.diskless.intervals[mask],
             result.diskless.ratios[mask]),
            ("diskful", result.diskful.intervals[mask],
             result.diskful.ratios[mask]),
        ],
        logx=True,
        title="FIG5 — E[T]/T vs interval (log x)",
        marks=[
            (result.diskless.optimum.interval, result.diskless.min_ratio),
            (result.diskful.optimum.interval, result.diskful.min_ratio),
        ],
    )
    headline = (
        f"\nheadline: diskless reduces E[T] by {result.reduction * 100:.1f}% "
        f"(paper: 18%); diskless overhead {result.diskless.overhead_ratio * 100:.2f}%"
        f" (paper: ~1%); diskful adds {result.diskful.overhead_ratio * 100:.1f}%"
        f" (paper: 'nearly 20%')\n"
    )
    return "\n".join([table, "", plot, headline])


def test_fig5_sweep(benchmark, report):
    result = benchmark(fig5)
    report(_report_text(result))
    # shape assertions: who wins, by roughly what factor, where optima fall
    assert 0.14 <= result.reduction <= 0.23
    assert 0.005 <= result.diskless.overhead_ratio <= 0.02
    assert 0.15 <= result.diskful.overhead_ratio <= 0.30
    assert result.diskless.optimum.interval < result.diskful.optimum.interval
    # diskless dominates over the operating range
    mask = (result.diskless.intervals > 10) & (result.diskless.intervals < 1e4)
    assert (result.diskless.ratios[mask] <= result.diskful.ratios[mask] + 1e-9).all()


def test_fig5_optimum_search_only(benchmark):
    """Micro-bench of the interval optimizer on the diskful curve."""
    from repro.failures import PAPER_LAMBDA
    from repro.model import (
        ClusterModel,
        PAPER_JOB_SECONDS,
        find_optimal_interval,
        overhead_function,
    )

    cluster = ClusterModel()
    ov = overhead_function(cluster, "diskful")
    opt = benchmark(find_optimal_interval, PAPER_LAMBDA, PAPER_JOB_SECONDS, ov)
    assert 500 < opt.interval < 10000
