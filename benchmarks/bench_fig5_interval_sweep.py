"""FIG5 / TAB-MODEL — the headline: expected-time ratio vs checkpoint
interval, diskless vs disk-full, optima marked (Fig. 5, Section V-B).

Paper numbers at the operating point (MTBF 3 h, T = 2 days, 4 physical
machines, 12 VMs, 40 ms base overhead):

* diskless cuts expected completion time by ~18% over disk-based;
* diskless overhead ratio ~1% above the fault-free ideal;
* disk-full "adds nearly 20% to the total execution time".

The sweep runs through the ``repro.campaign`` layer: the bench asserts
that the parallel fan-out is bit-identical to both the serial campaign
and the direct :func:`repro.model.fig5` path, measures serial vs
parallel wall-clock (speedup is recorded, not claimed — on a 1-core
container it can be < 1), and appends the numbers to
``BENCH_campaign.json``.
"""

import time
from pathlib import Path

import numpy as np

from repro.analysis import ascii_plot, format_seconds, render_table
from repro.campaign import ResultStore, run_fig5_campaign
from repro.model import fig5

BENCH_REPORT = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
#: Worker processes for the parallel leg of campaign benches.
PARALLEL_JOBS = 4


def _report_text(result) -> str:
    rows = []
    for s in (result.diskful, result.diskless):
        rows.append([
            s.method,
            format_seconds(s.optimum.interval),
            format_seconds(s.optimum.overhead_at_optimum),
            f"{s.min_ratio:.4f}",
            f"{s.overhead_ratio * 100:.2f}%",
        ])
    table = render_table(
        ["method", "N* (optimal interval)", "T_ov(N*)", "min E[T]/T",
         "overhead ratio"],
        rows,
        title="FIG5 minima ('X' marks)",
    )
    mask = result.diskful.ratios < 2.0
    plot = ascii_plot(
        [
            ("diskless", result.diskless.intervals[mask],
             result.diskless.ratios[mask]),
            ("diskful", result.diskful.intervals[mask],
             result.diskful.ratios[mask]),
        ],
        logx=True,
        title="FIG5 — E[T]/T vs interval (log x)",
        marks=[
            (result.diskless.optimum.interval, result.diskless.min_ratio),
            (result.diskful.optimum.interval, result.diskful.min_ratio),
        ],
    )
    headline = (
        f"\nheadline: diskless reduces E[T] by {result.reduction * 100:.1f}% "
        f"(paper: 18%); diskless overhead {result.diskless.overhead_ratio * 100:.2f}%"
        f" (paper: ~1%); diskful adds {result.diskful.overhead_ratio * 100:.1f}%"
        f" (paper: 'nearly 20%')\n"
    )
    return "\n".join([table, "", plot, headline])


def _fig5_via_campaign():
    result, _ = run_fig5_campaign(jobs=1)
    return result


def test_fig5_sweep(benchmark, report):
    result = benchmark(_fig5_via_campaign)
    report(_report_text(result))
    # shape assertions: who wins, by roughly what factor, where optima fall
    assert 0.14 <= result.reduction <= 0.23
    assert 0.005 <= result.diskless.overhead_ratio <= 0.02
    assert 0.15 <= result.diskful.overhead_ratio <= 0.30
    assert result.diskless.optimum.interval < result.diskful.optimum.interval
    # diskless dominates over the operating range
    mask = (result.diskless.intervals > 10) & (result.diskless.intervals < 1e4)
    assert (result.diskless.ratios[mask] <= result.diskful.ratios[mask] + 1e-9).all()


def test_fig5_campaign_parallel(report, tmp_path):
    """Serial vs parallel campaign: bit-identical output, measured clock.

    Also proves resume semantics on the real sweep: a second run against
    the same store executes zero tasks.
    """
    t0 = time.perf_counter()
    serial, serial_run = run_fig5_campaign(jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel, parallel_run = run_fig5_campaign(jobs=PARALLEL_JOBS)
    parallel_s = time.perf_counter() - t0

    # the acceptance bar: parallel fan-out reproduces the serial series
    # (and the direct model path) bit for bit
    direct = fig5()
    for a, b in ((serial, parallel), (serial, direct)):
        assert np.array_equal(a.diskless.intervals, b.diskless.intervals)
        assert np.array_equal(a.diskless.ratios, b.diskless.ratios)
        assert np.array_equal(a.diskful.ratios, b.diskful.ratios)
        assert a.diskless.optimum.interval == b.diskless.optimum.interval
        assert a.diskful.optimum.interval == b.diskful.optimum.interval

    # resume: second run over a warm store executes nothing
    store = ResultStore(tmp_path / "fig5_store")
    _, cold = run_fig5_campaign(jobs=1, store=store)
    _, warm = run_fig5_campaign(jobs=1, store=store)
    assert cold.n_executed == cold.n_total
    assert warm.n_executed == 0 and warm.n_cached == warm.n_total

    payload = {
        "tasks": serial_run.n_total,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "parallel_jobs": PARALLEL_JOBS,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "resume_cached": warm.n_cached,
    }
    store.write_report(BENCH_REPORT, "fig5_interval_sweep", payload)
    report(
        f"\nFIG5 campaign: {payload['tasks']} tasks, serial "
        f"{serial_s:.2f}s vs {PARALLEL_JOBS}-way {parallel_s:.2f}s "
        f"(speedup {payload['speedup']}x, measured); series bit-identical; "
        f"resume re-executed 0 of {warm.n_total} tasks -> {BENCH_REPORT.name}"
    )


def test_fig5_optimum_search_only(benchmark):
    """Micro-bench of the interval optimizer on the diskful curve."""
    from repro.failures import PAPER_LAMBDA
    from repro.model import (
        ClusterModel,
        PAPER_JOB_SECONDS,
        find_optimal_interval,
        overhead_function,
    )

    cluster = ClusterModel()
    ov = overhead_function(cluster, "diskful")
    opt = benchmark(find_optimal_interval, PAPER_LAMBDA, PAPER_JOB_SECONDS, ov)
    assert 500 < opt.interval < 10000
