"""FIG3 — orthogonal RAID with a dedicated checkpointing node.

Regenerates the Fig. 3 configuration (3 compute nodes x 3 VMs, one
checkpoint node holding every group's parity) and contrasts it with the
Fig. 4 rotation: same protocol, different parity placement, and the
dedicated node's rx link + XOR engine become the bottleneck.
"""

from repro.analysis import format_bytes, format_seconds, render_table
from repro.core import checkpoint_node, dvdc

from conftest import functional_cluster, run_to_completion


def _fig3_epoch():
    sim, cluster = functional_cluster(4, 3, seed=21)
    # vacate node 3 -> dedicated checkpoint node, 9 protected VMs
    for vm in list(cluster.vms_on(3)):
        cluster.node(3).evict(vm)
        del cluster.vms[vm.vm_id]
    ck = checkpoint_node(cluster, node_id=3)
    r = run_to_completion(sim, ck.run_cycle())
    return cluster, ck, r


def _fig4_epoch(n_vms: int = 9):
    sim, cluster = functional_cluster(4, 3, seed=21)
    # keep only n_vms so both architectures protect the same count
    for vm in list(cluster.all_vms)[n_vms:]:
        cluster.node(vm.node_id).evict(vm)
        del cluster.vms[vm.vm_id]
    ck = dvdc(cluster, group_size=3)
    r = run_to_completion(sim, ck.run_cycle())
    return cluster, ck, r


def test_fig3_epoch(benchmark, report):
    cluster, ck, r3 = benchmark(_fig3_epoch)
    _, _, r4 = _fig4_epoch()
    rows = [
        ["Fig.3 dedicated node", format_seconds(r3.overhead),
         format_seconds(r3.latency), format_bytes(r3.network_bytes),
         f"{len(r3.xor_seconds_by_node)} node(s)"],
        ["Fig.4 DVDC (same 9 VMs)", format_seconds(r4.overhead),
         format_seconds(r4.latency), format_bytes(r4.network_bytes),
         f"{len(r4.xor_seconds_by_node)} node(s)"],
    ]
    report(render_table(
        ["architecture", "overhead", "latency", "traffic", "parity spread"],
        rows,
        title="FIG3 vs FIG4 — same protocol, different parity placement",
    ))
    # parity concentrated on the dedicated node
    assert list(r3.xor_seconds_by_node) == [3]
    assert len(cluster.node(3).parity_store) == len(ck.layout)
    # the fan-in makes Fig.3 strictly slower than the Fig.4 rotation
    assert r3.latency > r4.latency


def test_fig3_dedicated_node_loss_recovers_parity(benchmark, report):
    """Losing the checkpoint node loses ALL parity but no data: every
    group re-encodes; no VM state is touched."""

    def scenario():
        sim, cluster = functional_cluster(4, 3, seed=22)
        for vm in list(cluster.vms_on(3)):
            cluster.node(3).evict(vm)
            del cluster.vms[vm.vm_id]
        ck = checkpoint_node(cluster, node_id=3)
        run_to_completion(sim, ck.run_cycle())
        cluster.kill_node(3)
        rep = run_to_completion(sim, ck.recover(3))
        return rep

    rep = benchmark(scenario)
    report(
        f"FIG3 checkpoint-node crash: {len(rep.reencoded_groups)} groups "
        f"re-encoded in {format_seconds(rep.recovery_time)}, "
        f"{len(rep.reconstructed)} VMs rebuilt (expected 0)"
    )
    assert len(rep.reencoded_groups) == 3
    assert rep.reconstructed == {}
