"""FIG4 — Distributed Virtual Diskless Checkpointing: rotating parity,
no checkpoint node, all nodes compute (Section IV-B).

Regenerates: the Fig. 4 epoch with its even parity split ("the parity
calculation is evenly distributed automatically"), plus single-failure
recovery on the full 12-VM configuration.
"""

import numpy as np

from repro.analysis import format_bytes, format_seconds, render_table
from repro.checkpoint import IncrementalCapture
from repro.core import dvdc

from conftest import functional_cluster, run_to_completion


def _epoch():
    sim, cluster = functional_cluster(4, 3, seed=31)
    ck = dvdc(cluster)
    r = run_to_completion(sim, ck.run_cycle())
    return sim, cluster, ck, r


def test_fig4_epoch_even_parity_split(benchmark, report):
    r = benchmark(lambda: _epoch()[3])
    split = {n: format_seconds(t) for n, t in sorted(r.xor_seconds_by_node.items())}
    report(render_table(
        [
            "overhead", "latency", "traffic",
            "XOR max/total", "nodes with parity work",
        ],
        [[
            format_seconds(r.overhead),
            format_seconds(r.latency),
            format_bytes(r.network_bytes),
            f"{r.max_node_xor_seconds / r.total_xor_seconds:.2f}",
            str(split),
        ]],
        title="FIG4 — DVDC epoch (4 nodes x 3 VMs, rotating parity)",
    ))
    # even split: busiest node does exactly 1/4 of the XOR work
    assert r.max_node_xor_seconds == (
        __import__("pytest").approx(r.total_xor_seconds / 4)
    )
    assert sorted(r.xor_seconds_by_node) == [0, 1, 2, 3]


def test_fig4_incremental_epoch(benchmark, report):
    """Steady-state DVDC epoch: only deltas move (Section IV-C)."""

    def scenario():
        sim, cluster, ck, _ = (lambda: (_epoch()))()
        return None

    def inc_epoch():
        sim, cluster = functional_cluster(4, 3, seed=32)
        ck = dvdc(cluster, strategy=IncrementalCapture())
        run_to_completion(sim, ck.run_cycle())
        rng = np.random.default_rng(0)
        for vm in cluster.all_vms:
            vm.image.touch_pages(rng.integers(0, vm.image.n_pages, 2), rng)
        # advance time so the logical dirty estimate is realistic
        sim.schedule(60.0, lambda: None)
        sim.run()
        return run_to_completion(sim, ck.run_cycle())

    r = benchmark(inc_epoch)
    report(
        f"FIG4 incremental epoch: traffic {format_bytes(r.network_bytes)} "
        f"(full epoch: 12 GiB), latency {format_seconds(r.latency)}"
    )
    assert r.network_bytes < 12e9 / 5


def test_fig4_single_failure_recovery(benchmark, report):
    def scenario():
        sim, cluster, ck, _ = _epoch()
        committed = {
            vm.vm_id: cluster.hypervisor(vm.node_id)
            .committed(vm.vm_id).payload_flat().copy()
            for vm in cluster.all_vms
        }
        cluster.kill_node(1)
        rep = run_to_completion(sim, ck.recover(1))
        ok = all(
            np.array_equal(cluster.vm(v).image.flat, committed[v])
            for v in committed
        )
        return rep, ok, ck, cluster

    rep, ok, ck, cluster = benchmark(scenario)
    report(
        f"FIG4 recovery: lost VMs {sorted(rep.reconstructed)} rebuilt in "
        f"{format_seconds(rep.recovery_time)} "
        f"({format_bytes(rep.network_bytes)} moved, "
        f"{format_bytes(rep.xor_bytes)} XORed); "
        f"{len(rep.rolled_back)} survivors rolled back locally; "
        f"bit-exact = {ok}"
    )
    assert ok
    assert len(rep.reconstructed) == 3
    assert len(rep.rolled_back) == 9
    # no NAS involvement at all
    assert cluster.nas.disk.ops == 0
