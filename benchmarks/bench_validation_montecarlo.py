"""VAL-MC — "models to corroborate our equations" (Section VII).

Two corroboration levels:

1. abstract — the closed-form E[T_chk;ov] against the segment-game
   Monte-Carlo, across a (λ, N) grid;
2. system — the full cluster simulation (real flows, real recoveries)
   against the model prediction at a matched operating point.
"""

import numpy as np

from repro.analysis import format_seconds, render_table
from repro.checkpoint import DiskfulCheckpointer
from repro.failures import Exponential, FailureInjector, FailureSchedule
from repro.model import (
    ClusterModel,
    diskful_costs,
    estimate_expected_time,
    expected_time_with_overhead,
)
from repro.workloads import CheckpointedJob, paper_scenario


def test_valmc_equation_grid(benchmark, report):
    """Closed form vs Monte-Carlo over a (MTBF, interval) grid."""
    T, Tov, Tr = 8 * 3600.0, 120.0, 60.0
    grid = [
        (1 / 1800.0, 600.0),
        (1 / 3600.0, 900.0),
        (1 / 3600.0, 1800.0),
        (1 / 7200.0, 1800.0),
        (1 / 14400.0, 3600.0),
    ]

    def run_grid():
        rng = np.random.default_rng(7)
        out = []
        for lam, N in grid:
            analytic = expected_time_with_overhead(lam, T, N, Tov, Tr)
            mc = estimate_expected_time(rng, lam, T, N, Tov, Tr, n_runs=4000)
            out.append((lam, N, analytic, mc))
        return out

    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    all_ok = True
    for lam, N, analytic, mc in results:
        ok = mc.within(analytic)
        all_ok &= ok
        rows.append([
            f"{1 / lam / 3600:.1f}h",
            format_seconds(N),
            format_seconds(analytic),
            f"{format_seconds(mc.mean)} ± {format_seconds(1.96 * mc.std_error)}",
            "yes" if ok else "NO",
        ])
    report(render_table(
        ["MTBF", "interval", "E[T] closed form", "E[T] Monte-Carlo (95% CI)",
         "agrees (3 sigma)"],
        rows,
        title="VAL-MC — Section V equations vs Monte-Carlo (T = 8 h)",
    ))
    assert all_ok


def test_valmc_system_level(benchmark, report):
    """Cluster-simulation time ratio vs the model's prediction."""
    work, interval = 2 * 3600.0, 900.0
    node_mtbf = 8 * 3600.0
    lam = 4 / node_mtbf

    def one_run(seed: int) -> float | None:
        sc = paper_scenario(seed=seed, functional=True)
        rng = sc.rngs.stream("failures")
        sched = FailureSchedule.draw(
            rng, Exponential(1 / node_mtbf), 4, horizon=work * 8,
            repair_time=30.0,
        )
        inj = FailureInjector(sc.sim, 4, schedule=sched)
        ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(sc.cluster, ck, work=work, interval=interval,
                              injector=inj, repair_time=30.0)
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        return job.result.time_ratio if job.result.completed else None

    def replications():
        vals = [one_run(seed) for seed in range(5)]
        return [v for v in vals if v is not None]

    ratios = benchmark.pedantic(replications, rounds=1, iterations=1)
    measured = float(np.mean(ratios))
    t_ov = diskful_costs(ClusterModel(), interval).overhead
    predicted = expected_time_with_overhead(lam, work, interval, t_ov, 30.0) / work
    report(
        f"VAL-MC system level (diskful, 2h job, cluster MTBF 2h): "
        f"simulated E[T]/T = {measured:.3f} over {len(ratios)} runs, "
        f"model = {predicted:.3f} "
        f"(relative error {abs(measured - predicted) / predicted * 100:.0f}%)"
    )
    assert abs(measured - predicted) / predicted < 0.35
