"""VAL-MC — "models to corroborate our equations" (Section VII).

Two corroboration levels:

1. abstract — the closed-form E[T_chk;ov] against the segment-game
   Monte-Carlo, across a (λ, N) grid, executed through the
   ``repro.campaign`` layer as deterministically seeded chunks (serial
   vs parallel wall-clock measured and appended to
   ``BENCH_campaign.json``; the two are asserted bit-identical);
2. system — the full cluster simulation (real flows, real recoveries)
   against the model prediction at a matched operating point.
"""

import time
from pathlib import Path

import numpy as np

from repro.analysis import format_seconds, render_table
from repro.campaign import ResultStore, run_validate_campaign
from repro.checkpoint import DiskfulCheckpointer
from repro.failures import Exponential, FailureInjector, FailureSchedule
from repro.model import (
    ClusterModel,
    diskful_costs,
    expected_time_with_overhead,
)
from repro.workloads import CheckpointedJob, paper_scenario

BENCH_REPORT = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
PARALLEL_JOBS = 4


def test_valmc_equation_grid(benchmark, report, tmp_path):
    """Closed form vs campaign Monte-Carlo over a (MTBF, interval) grid."""
    T, Tov, Tr = 8 * 3600.0, 120.0, 60.0
    grid = [
        (1 / 1800.0, 600.0),
        (1 / 3600.0, 900.0),
        (1 / 3600.0, 1800.0),
        (1 / 7200.0, 1800.0),
        (1 / 14400.0, 3600.0),
    ]

    def run_grid(jobs=1):
        cases, campaign = run_validate_campaign(
            jobs=jobs, T=T, T_ov=Tov, T_r=Tr, runs=4000, seed=7, cases=grid,
        )
        assert campaign.n_failed == 0
        return cases, campaign

    t0 = time.perf_counter()
    (cases, serial_run) = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par_cases, parallel_run = run_grid(jobs=PARALLEL_JOBS)
    parallel_s = time.perf_counter() - t0

    # chunk seeding is content-derived: the parallel fan-out merges to
    # the exact same estimates as the serial loop
    for a, b in zip(cases, par_cases):
        assert a["estimate"].mean == b["estimate"].mean
        assert a["estimate"].std_error == b["estimate"].std_error

    rows = []
    all_ok = True
    for case in cases:
        mc = case["estimate"]
        analytic = expected_time_with_overhead(
            case["lam"], T, case["N"], Tov, Tr
        )
        ok = mc.within(analytic)
        all_ok &= ok
        rows.append([
            f"{case['mtbf_h']:.1f}h",
            format_seconds(case["N"]),
            format_seconds(analytic),
            f"{format_seconds(mc.mean)} ± {format_seconds(1.96 * mc.std_error)}",
            "yes" if ok else "NO",
        ])
    report(render_table(
        ["MTBF", "interval", "E[T] closed form", "E[T] Monte-Carlo (95% CI)",
         "agrees (3 sigma)"],
        rows,
        title="VAL-MC — Section V equations vs Monte-Carlo (T = 8 h)",
    ))
    payload = {
        "tasks": serial_run.n_total,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "parallel_jobs": PARALLEL_JOBS,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
    }
    ResultStore(tmp_path / "valmc_store").write_report(
        BENCH_REPORT, "validation_montecarlo", payload
    )
    report(
        f"\nVAL-MC campaign: {payload['tasks']} chunk tasks, serial "
        f"{serial_s:.2f}s vs {PARALLEL_JOBS}-way {parallel_s:.2f}s "
        f"(speedup {payload['speedup']}x, measured) -> {BENCH_REPORT.name}"
    )
    assert all_ok


def test_valmc_system_level(benchmark, report):
    """Cluster-simulation time ratio vs the model's prediction."""
    work, interval = 2 * 3600.0, 900.0
    node_mtbf = 8 * 3600.0
    lam = 4 / node_mtbf

    def one_run(seed: int) -> float | None:
        sc = paper_scenario(seed=seed, functional=True)
        rng = sc.rngs.stream("failures")
        sched = FailureSchedule.draw(
            rng, Exponential(1 / node_mtbf), 4, horizon=work * 8,
            repair_time=30.0,
        )
        inj = FailureInjector(sc.sim, 4, schedule=sched)
        ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(sc.cluster, ck, work=work, interval=interval,
                              injector=inj, repair_time=30.0)
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        return job.result.time_ratio if job.result.completed else None

    def replications():
        vals = [one_run(seed) for seed in range(5)]
        return [v for v in vals if v is not None]

    ratios = benchmark.pedantic(replications, rounds=1, iterations=1)
    measured = float(np.mean(ratios))
    t_ov = diskful_costs(ClusterModel(), interval).overhead
    predicted = expected_time_with_overhead(lam, work, interval, t_ov, 30.0) / work
    report(
        f"VAL-MC system level (diskful, 2h job, cluster MTBF 2h): "
        f"simulated E[T]/T = {measured:.3f} over {len(ratios)} runs, "
        f"model = {predicted:.3f} "
        f"(relative error {abs(measured - predicted) / predicted * 100:.0f}%)"
    )
    assert abs(measured - predicted) / predicted < 0.35
