"""FIG2 — orthogonal RAID survives controller (node) failure.

Fig. 2's claim, transplanted to VMs: grid each RAID group across
physical nodes so any single node failure costs each group at most one
element.  Regenerates the survivability matrix: every single-node crash
is recoverable under XOR; double crashes need RDP-class codes.
"""

from repro.analysis import render_table
from repro.core import (
    build_orthogonal_layout,
    survives_single_node_failure,
    tolerable_node_failure_sets,
    validate_layout,
)

from conftest import functional_cluster


def _survivability(n_nodes: int, vms_per_node: int):
    sim, cluster = functional_cluster(n_nodes, vms_per_node, seed=2,
                                      image_pages=4, page_size=16)
    layout = build_orthogonal_layout(cluster, group_size=n_nodes - 1)
    ok = validate_layout(layout, cluster).ok
    single = survives_single_node_failure(layout, cluster, tolerance=1)
    surv1, fatal1 = tolerable_node_failure_sets(layout, cluster, 1, max_set=2)
    surv2, fatal2 = tolerable_node_failure_sets(layout, cluster, 2, max_set=2)
    return {
        "valid": ok,
        "single_ok": single,
        "doubles_fatal_xor": len([c for c in fatal1 if len(c) == 2]),
        "doubles_fatal_rdp": len([c for c in fatal2 if len(c) == 2]),
        "n_groups": len(layout),
    }


def test_fig2_survivability_matrix(benchmark, report):
    configs = [(4, 3), (5, 4), (8, 2), (6, 6)]

    def sweep():
        return {cfg: _survivability(*cfg) for cfg in configs}

    results = benchmark(sweep)
    rows = []
    for (n, v), r in results.items():
        rows.append([
            f"{n}x{v}",
            r["n_groups"],
            "yes" if r["single_ok"] else "NO",
            r["doubles_fatal_xor"],
            r["doubles_fatal_rdp"],
        ])
    report(render_table(
        ["cluster (nodes x VMs)", "groups", "any 1-node crash survivable "
         "(XOR)", "fatal 2-node pairs (XOR)", "fatal 2-node pairs (RDP)"],
        rows,
        title="FIG2 — orthogonal placement survivability",
    ))
    for r in results.values():
        assert r["valid"] and r["single_ok"]
        assert r["doubles_fatal_rdp"] == 0  # RDP-tolerance saves all pairs


def test_fig2_layout_construction_speed(benchmark):
    """Layout building must stay cheap at scale (placement is on the
    recovery path via rebalance)."""
    sim, cluster = functional_cluster(32, 4, seed=3, image_pages=4, page_size=16)
    layout = benchmark(build_orthogonal_layout, cluster, 8)
    assert validate_layout(layout, cluster).ok


def test_fig2_rack_domain_extension(benchmark, report):
    """FIG2 extension: the controller argument lifted to racks.

    Domain-aware placement lets single XOR parity survive a *whole-rack*
    (multi-node simultaneous) crash; naive node-orthogonal placement
    does not.
    """
    import numpy as np

    from repro.core import DisklessCheckpointer, validate_layout
    from repro.failures import racks

    def scenario():
        sim, cluster = functional_cluster(6, 2, seed=4)
        domains = racks(6, 2)
        layout = build_orthogonal_layout(cluster, group_size=2, domains=domains)
        ok_aware = validate_layout(layout, cluster, domains=domains).ok
        naive = build_orthogonal_layout(cluster, group_size=3)
        ok_naive = validate_layout(naive, cluster, domains=domains).ok
        # functional proof: kill rack 1 (nodes 2+3), recover bit-exact
        ck = DisklessCheckpointer(cluster, layout)
        from conftest import run_to_completion

        run_to_completion(sim, ck.run_cycle())
        committed = {
            vm.vm_id: cluster.hypervisor(vm.node_id)
            .committed(vm.vm_id).payload_flat().copy()
            for vm in cluster.all_vms
        }
        cluster.kill_node(2)
        cluster.kill_node(3)
        run_to_completion(sim, ck.recover(2))
        run_to_completion(sim, ck.recover(3))
        exact = all(
            np.array_equal(cluster.vm(v).image.flat, committed[v])
            for v in committed
        )
        return ok_aware, ok_naive, exact

    ok_aware, ok_naive, exact = benchmark(scenario)
    report(
        "FIG2-RACKS — 3 racks x 2 nodes: rack-aware layout valid at rack "
        f"tolerance = {ok_aware}; naive node-layout valid = {ok_naive}; "
        f"whole-rack crash recovered bit-exact under XOR = {exact}"
    )
    assert ok_aware and not ok_naive and exact
