"""TAB-MEMORY / TAB-RELIABILITY — the two quantitative claims outside
Fig. 5: "for a modest memory overhead" (conclusion) and "highly fault
tolerant" (title), made into tables.
"""

from repro.analysis import format_bytes, format_seconds, render_table
from repro.model import (
    ClusterModel,
    SCHEMES,
    compare_codes,
    job_survival_probability,
    scheme_footprint,
)


def test_memory_overhead_table(benchmark, report):
    m = ClusterModel()

    def build():
        return {s: scheme_footprint(m, s) for s in SCHEMES}

    feet = benchmark(build)
    rows = [
        [
            s,
            format_bytes(f.steady_per_node),
            format_bytes(f.peak_per_node),
            f"{f.overhead_ratio:.2f}x",
        ]
        for s, f in feet.items()
    ]
    report(render_table(
        ["scheme", "steady RAM/node", "peak RAM/node", "cluster overhead"],
        rows,
        title="TAB-MEMORY — RAM cost of each scheme "
              "(4 nodes x 3 x 1 GiB VMs, group size 3)",
    ))
    # the conclusion's claim, quantified: DVDC sits below Plank's 3x
    assert feet["dvdc"].overhead_ratio < feet["diskless_normal"].overhead_ratio
    # and the known honest caveat: raw RAM is comparable to Remus — the
    # DVDC win over Remus is hosting (no dedicated standby capacity),
    # not bytes
    assert feet["dvdc"].overhead_ratio < feet["dvdc_rdp"].overhead_ratio


def test_reliability_table(benchmark, report):
    """MTTDL and job survival, XOR vs RDP, across failure densities."""
    n, wall = 4, 48 * 3600.0
    window = 120.0  # recovery + degraded interval until heal

    def build():
        out = []
        for mtbf_h in (1.0, 4.0, 12.0, 48.0):
            lam = 1.0 / (mtbf_h * 3600.0)
            out.append((mtbf_h, compare_codes(lam, n, wall, window)))
        return out

    results = benchmark(build)
    rows = []
    for mtbf_h, c in results:
        rows.append([
            f"{mtbf_h:g}h",
            format_seconds(c.mttdl_xor),
            format_seconds(c.mttdl_rdp),
            f"{c.mttdl_gain:.0f}x",
            f"{c.survival_xor * 100:.1f}%",
            f"{c.survival_rdp * 100:.2f}%",
        ])
    report(render_table(
        ["node MTBF", "MTTDL (XOR)", "MTTDL (RDP)", "gain",
         "48h job survives (XOR)", "(RDP)"],
        rows,
        title=f"TAB-RELIABILITY — 4 nodes, vulnerability window "
              f"{window:.0f}s",
    ))
    for _, c in results:
        assert c.mttdl_rdp > 10 * c.mttdl_xor
        assert c.survival_rdp > c.survival_xor


def test_window_sensitivity(benchmark, report):
    """Why heal() matters: survival vs the degraded-window length."""
    lam, n, wall = 1.0 / (4 * 3600.0), 4, 24 * 3600.0

    def build():
        return [
            (w, job_survival_probability(lam, n, wall, w, 1))
            for w in (30.0, 60.0, 120.0, 300.0, 600.0, 1800.0)
        ]

    results = benchmark(build)
    rows = [[format_seconds(w), f"{p * 100:.1f}%"] for w, p in results]
    report(render_table(
        ["vulnerability window", "24h job survival (XOR)"],
        rows,
        title="TAB-RELIABILITY — shrinking the degraded window "
              "(the heal/rebalance payoff)",
    ))
    ps = [p for _, p in results]
    assert ps == sorted(ps, reverse=True)
