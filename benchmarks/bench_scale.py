"""Ten-thousand-node scale benchmark: DVDC epochs on the optimized hot paths.

Times the canonical scale scenario (:mod:`repro.perf.scale`) at 64, 256,
1024, 4096, and 10240 nodes with the calendar-queue event engine +
incremental fluid-flow allocator + COW snapshots + buffer pool, against
the pre-optimization reference allocator, and writes ``BENCH_scale.json``
at the repo root.  The reference allocator is intractably slow at 1024
nodes and beyond, so above 64 nodes it is measured over a capped
wall-clock window and its epoch throughput derived from the
(bit-identical) events-per-epoch of the incremental run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q

or regenerate the JSON directly (what CI's perf job diffs against)::

    PYTHONPATH=src python -m repro.cli bench scale --write
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import ScaleConfig, generate_bench, heap_cancel_bench, run_scale_point

BENCH_REPORT = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def test_incremental_allocator_speedup(benchmark, report):
    """Incremental reallocation beats the reference at 64 nodes already."""
    inc = benchmark(lambda: run_scale_point(ScaleConfig(n_nodes=64, epochs=2)))
    ref = run_scale_point(ScaleConfig(n_nodes=64, epochs=2, allocator="reference"))
    assert inc["events"] == ref["events"], "allocators must execute identical event streams"
    speedup = inc["events_per_sec"] / ref["events_per_sec"]
    report(
        f"\n[scale 64 nodes] incremental {inc['events_per_sec']:,.0f} ev/s, "
        f"reference {ref['events_per_sec']:,.0f} ev/s -> {speedup:.1f}x"
    )
    assert speedup > 1.5, f"incremental allocator should win at 64 nodes, got {speedup:.2f}x"


def test_differential_digests_bit_identical(report):
    """The optimized paths change nothing observable: all digests match."""
    cfg = dict(n_nodes=16, epochs=2, trace=True)
    inc = run_scale_point(ScaleConfig(**cfg), collect_digests=True)["digests"]
    ref = run_scale_point(
        ScaleConfig(**cfg, allocator="reference"), collect_digests=True
    )["digests"]
    raw = run_scale_point(ScaleConfig(**cfg, cow=False), collect_digests=True)["digests"]
    assert inc == ref == raw
    report(f"\n[scale differential] digests identical across paths: {sorted(inc)}")


def test_heap_cancel_bench_bounded(benchmark, report):
    """Cancel-heavy schedules keep the heap near the live set: O(log live)."""
    small = heap_cancel_bench(20_000)
    big = benchmark(lambda: heap_cancel_bench(80_000))
    # peak heap tracks the live window (~64 events + compaction slack),
    # independent of how many total events were scheduled and cancelled
    assert small["peak_heap"] < 1024
    assert big["peak_heap"] < 1024
    assert big["compactions"] > 0
    report(
        f"\n[heap bench] {big['ops_per_sec']:,.0f} ops/s, peak heap "
        f"{big['peak_heap']} (of {big['n_events']:,} scheduled), "
        f"{big['compactions']} compactions"
    )


@pytest.mark.slow
def test_write_bench_scale_report(report):
    """Full 64/256/1024/4096/10240 sweep; writes ``BENCH_scale.json``."""
    result = generate_bench(quick=False, log=print)
    BENCH_REPORT.write_text(json.dumps(result, indent=2) + "\n")
    by_nodes = {p["n_nodes"]: p for p in result["points"]}
    assert set(by_nodes) == {64, 256, 1024, 4096, 10240}
    # the acceptance bar: >= 5x epoch throughput at 1024 nodes, and the
    # calendar queue must keep throughput near-flat out to 10k nodes
    # (within 3x of the 64-node point — heap-based scheduling degrades
    # far worse than that here)
    p1024 = by_nodes[1024]
    assert p1024["speedup_vs_reference"] >= 5.0
    ratio_10k = by_nodes[10240]["events_per_sec"] / by_nodes[64]["events_per_sec"]
    assert ratio_10k > 1 / 3, f"throughput collapsed at 10k nodes: {ratio_10k:.2f}"
    lines = [f"\n[scale sweep] wrote {BENCH_REPORT.name}"]
    for n in sorted(by_nodes):
        p = by_nodes[n]
        capped = " (reference wall-capped)" if p["reference_capped"] else ""
        lines.append(
            f"  {n:>5} nodes / {p['n_vms']} VMs: "
            f"{p['events_per_sec']:,.0f} ev/s, "
            f"{p['speedup_vs_reference']:.1f}x vs reference{capped}, "
            f"peak RSS {p['peak_rss_bytes'] / 1e6:.0f}MB"
        )
    lines.append(f"  heap bench: {result['heap_bench']['ops_per_sec']:,.0f} ops/s")
    report("\n".join(lines))
