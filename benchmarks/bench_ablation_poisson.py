"""ABL-POISSON — does the Poisson assumption matter? (Section V caveat)

"Though we can imagine cases where the Poisson assumption may not hold
even on single computers (cf. the 'bathtub curve' model...), it is
often used as a basis for fundamental design decisions due to its
mathematical tractability."

Regenerates: the exponential closed form vs a renewal-process
Monte-Carlo under Weibull (Schroeder–Gibson's HPC fit), lognormal, and
bathtub failures at the same MTBF — at the paper's operating point and
at a pathologically failure-dense one.
"""

import numpy as np

from repro.analysis import format_seconds, render_table
from repro.failures import Bathtub, Exponential, LogNormal, Weibull
from repro.model import poisson_sensitivity

T, N, TOV, TR = 8 * 3600.0, 1200.0, 120.0, 60.0


def _distributions(mtbf: float):
    return [
        ("exponential (model)", Exponential(1.0 / mtbf)),
        ("weibull k=0.7 (HPC logs)", Weibull.from_mtbf(mtbf, 0.7)),
        ("weibull k=1.5 (wear-out)", Weibull.from_mtbf(mtbf, 1.5)),
        ("lognormal cv=1.5", LogNormal.from_mean_cv(mtbf, 1.5)),
        ("bathtub", Bathtub.typical(mtbf)),
    ]


def test_poisson_sensitivity_paper_regime(benchmark, report):
    mtbf = 3 * 3600.0  # the paper's operating point

    def sweep():
        rng = np.random.default_rng(11)
        return [
            poisson_sensitivity(rng, d, T, N, TOV, TR, n_runs=2500, label=lbl)
            for lbl, d in _distributions(mtbf)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            r.label,
            format_seconds(r.mtbf),
            format_seconds(r.analytic_exponential),
            format_seconds(r.measured_mean),
            f"{r.relative_error * 100:+.1f}%",
        ]
        for r in results
    ]
    report(render_table(
        ["failure distribution", "MTBF", "Poisson closed form",
         "renewal Monte-Carlo", "model error"],
        rows,
        title="ABL-POISSON — MTBF 3 h, 8 h job, N=20 min "
              "(the paper's regime: N + T_ov << MTBF)",
    ))
    # the tractability gamble pays off here: every distribution within 5%
    for r in results:
        assert abs(r.relative_error) < 0.05


def test_poisson_sensitivity_dense_regime(benchmark, report):
    mtbf = 1800.0  # 30 min — segments no longer << MTBF

    def sweep():
        rng = np.random.default_rng(13)
        return [
            poisson_sensitivity(rng, d, T, N, TOV, TR, n_runs=2000, label=lbl)
            for lbl, d in _distributions(mtbf)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [r.label, f"{r.relative_error * 100:+.1f}%"] for r in results
    ]
    report(render_table(
        ["failure distribution", "model error"],
        rows,
        title="ABL-POISSON — MTBF 30 min (dense-failure stress): the "
              "assumption starts to crack",
    ))
    # heavy-tailed/infant-mortality distributions now deviate visibly
    worst = max(abs(r.relative_error) for r in results)
    assert worst > 0.03
