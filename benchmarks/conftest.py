"""Shared helpers for the benchmark harness.

Every ``bench_*`` module reproduces one paper artifact (figure/table —
see DESIGN.md §3).  Each exposes pytest-benchmark functions that time
the underlying computation AND print the regenerated rows/series, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.  Shape assertions (who wins, by what factor) are checked inside
the benches, so a regression in the reproduction fails the run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.sim import Simulator


def functional_cluster(
    n_nodes: int, vms_per_node: int, seed: int = 0,
    image_pages: int = 16, page_size: int = 64,
) -> tuple[Simulator, VirtualCluster]:
    """A cluster with small functional VM images for protocol benches."""
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
    rng = np.random.default_rng(seed)
    for i in range(n_nodes * vms_per_node):
        vm = cluster.create_vm(
            i % n_nodes, 1e9, dirty_rate=2e5,
            image_pages=image_pages, page_size=page_size,
        )
        fill = min(512, vm.image.nbytes)
        vm.image.write(0, rng.integers(0, 256, fill, dtype=np.uint8))
        vm.image.clear_dirty()
    return sim, cluster


def run_to_completion(sim: Simulator, gen):
    """Drive a protocol generator to completion, re-raising failures."""
    proc = sim.process(gen)
    sim.run()
    if proc.ok is False:
        raise proc.value
    return proc.value


@pytest.fixture
def report(capsys):
    """Print a reproduction report even under captured output."""

    def _p(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _p
