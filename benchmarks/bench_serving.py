"""BENCH-SERVING — arrival-stream throughput and serving-sweep rates.

Reproduces the ISSUE's serving performance contract: open-loop arrival
generation sustains >= 1M requests per run in vectorized chunks with
bit-identical chunked vs monolithic output, and the PS serving sweep
processes a checkpoint-protected cell at simulator-bulk rates (no
per-request Python events).

Wall-clock rates are hardware-dependent and therefore only *reported*
(and gated softly against ``BENCH_serving.json`` by CI via ``repro
bench serving --check``); everything byte-exact — digests, counts,
exact quantiles — is asserted hard right here.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serving import ServingLoad, run_serving_cell
from repro.serving.bench import (
    SERVE_POLICY,
    SERVE_QUICK_LOAD,
    SERVE_SEED,
    generate_serving_bench,
)

BENCH_REPORT = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def test_serving_bench_report(report):
    """Generate the full bench, write the report, gate the invariants."""
    result = generate_serving_bench(quick=False, log=report)
    BENCH_REPORT.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    arrivals = result["arrivals"]
    assert arrivals["n_requests"] >= 1_000_000  # the ISSUE floor
    assert arrivals["chunk_invariant"], (
        f"chunked digest {arrivals['digest']} != monolithic "
        f"{arrivals['monolithic_digest']}"
    )
    serve = result["serve"]
    assert serve["completed"] == serve["offered"] == serve["n_requests"]
    assert serve["lost"] == 0 and serve["lost_unrouted"] == 0
    assert serve["pauses"] > 0  # the protection actually ran
    report(
        f"serving bench -> {BENCH_REPORT.name}: arrivals "
        f"{arrivals['requests_per_sec']:,.0f} req/s, serve "
        f"{serve['requests_per_sec']:,.0f} req/s"
    )


def test_serve_digest_is_run_to_run_stable():
    """Two identical cells, two identical byte streams."""
    a = run_serving_cell(SERVE_POLICY, SERVE_QUICK_LOAD, SERVE_SEED)
    b = run_serving_cell(SERVE_POLICY, SERVE_QUICK_LOAD, SERVE_SEED)
    assert a["digest"] == b["digest"]
    assert a == b


def test_policy_shape_holds_at_bench_scale(report):
    """The paired-study ordering the ISSUE gates, at one bench cell:
    checkpoint pauses inflate p99 over baseline on the same trace."""
    from repro.serving import ServingPolicy

    load = ServingLoad(rate=240.0, n_requests=8_000)
    base = run_serving_cell(ServingPolicy("baseline"), load, SERVE_SEED)
    ck = run_serving_cell(
        ServingPolicy("ck", checkpoint=True, interval=1.0), load, SERVE_SEED
    )
    inflation = ck["latency"]["p99"] / base["latency"]["p99"] - 1.0
    report(
        f"p99 inflation under 1s checkpoint cadence: {inflation * 100:+.1f}% "
        f"({base['latency']['p99'] * 1e3:.1f} -> "
        f"{ck['latency']['p99'] * 1e3:.1f} ms)"
    )
    assert inflation > 0.05
