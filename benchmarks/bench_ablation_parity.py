"""ABL-PARITY — erasure-code ablation: XOR (the paper's choice) vs RDP
(the Section II-B2 extension for double failures).

Regenerates: encode/reconstruct throughput on real buffers plus the
space/tolerance trade-off table; and calibrates the raw in-memory XOR
bandwidth that the analytical model's ``memory_xor_bandwidth`` uses.
"""

import numpy as np
import pytest

from repro.analysis import format_bytes, render_table
from repro.cluster import measure_xor_bandwidth
from repro.core import RDPCode, XorCode

MEMBERS = 3
NBYTES = 1 << 20  # 1 MiB per member


@pytest.fixture(scope="module")
def members():
    rng = np.random.default_rng(0)
    return [rng.integers(0, 256, NBYTES, dtype=np.uint8) for _ in range(MEMBERS)]


def test_xor_encode_throughput(benchmark, members):
    code = XorCode()
    [parity] = benchmark(code.encode, members)
    assert parity.shape[0] == NBYTES


def test_rdp_encode_throughput(benchmark, members):
    code = RDPCode(MEMBERS)
    rp, dp = benchmark(code.encode, members)
    assert rp.size >= NBYTES


def test_xor_reconstruct_throughput(benchmark, members):
    code = XorCode()
    [parity] = code.encode(members)
    shards = [None, members[1], members[2]]
    out = benchmark(code.reconstruct, shards, [parity])
    assert np.array_equal(out[0], members[0])


def test_rdp_double_reconstruct_throughput(benchmark, members):
    code = RDPCode(MEMBERS)
    rp, dp = code.encode(members)
    shards = [None, None, members[2]]
    out = benchmark(code.reconstruct, shards, [rp, dp], NBYTES)
    assert np.array_equal(out[0], members[0])
    assert np.array_equal(out[1], members[1])


def test_parity_tradeoff_table(benchmark, report, members):
    """The space/tolerance trade-off the paper's design section weighs."""

    def build():
        xor_parity = XorCode().encode(members)
        rdp_parity = RDPCode(MEMBERS).encode(members)
        return xor_parity, rdp_parity

    xor_parity, rdp_parity = benchmark(build)
    data_bytes = MEMBERS * NBYTES
    rows = [
        ["XOR (paper)", 1, "1 of k+1",
         format_bytes(sum(p.nbytes for p in xor_parity)),
         f"{sum(p.nbytes for p in xor_parity) / data_bytes * 100:.1f}%"],
        ["RDP (Wang et al.)", 2, "any 2",
         format_bytes(sum(p.nbytes for p in rdp_parity)),
         f"{sum(p.nbytes for p in rdp_parity) / data_bytes * 100:.1f}%"],
    ]
    report(render_table(
        ["code", "parity shards", "tolerates", "parity bytes (k=3, 1 MiB)",
         "space overhead"],
        rows,
        title="ABL-PARITY — code trade-off",
    ))


def test_raw_xor_bandwidth_calibration(benchmark, report):
    """Measures this host's streaming XOR rate — the quantity the paper
    calls 'orders-of-magnitude faster than a disk write'."""
    a = np.random.default_rng(1).integers(0, 256, 1 << 24, dtype=np.uint8)
    b = a.copy()

    def kernel():
        np.bitwise_xor(b, a, out=b)

    benchmark(kernel)
    bw = measure_xor_bandwidth(1 << 24, repeats=3)
    disk_bw = 120e6
    report(
        f"ABL-PARITY calibration: in-memory XOR ≈ {format_bytes(bw)}/s on "
        f"this host — {bw / disk_bw:.0f}x a 120 MB/s disk write "
        "(paper: 'orders-of-magnitude faster')"
    )
    assert bw > 10 * disk_bw


def test_rdp_protocol_double_failure(benchmark, report):
    """ABL-RDP: the double-parity protocol surviving a simultaneous
    2-node crash end to end (the scenario XOR cannot)."""
    from repro.core import DoubleParityCheckpointer, build_double_parity_layout

    from conftest import functional_cluster, run_to_completion

    def scenario():
        sim, cluster = functional_cluster(6, 2, seed=9)
        layout = build_double_parity_layout(cluster, group_size=3)
        ck = DoubleParityCheckpointer(cluster, layout)
        run_to_completion(sim, ck.run_cycle())
        committed = {
            vm.vm_id: cluster.hypervisor(vm.node_id)
            .committed(vm.vm_id).payload_flat().copy()
            for vm in cluster.all_vms
        }
        cluster.kill_node(0)
        cluster.kill_node(1)
        rep = run_to_completion(sim, ck.recover(0, 1))
        ok = all(
            np.array_equal(cluster.vm(v).image.flat, committed[v])
            for v in committed
        )
        return rep, ok

    rep, ok = benchmark(scenario)
    report(
        f"ABL-RDP: simultaneous crash of 2 nodes; {len(rep.reconstructed)} "
        f"VMs rebuilt + {len(rep.reencoded_groups)} groups re-encoded in "
        f"{rep.recovery_time:.1f}s; bit-exact = {ok}"
    )
    assert ok
