"""ABL-SCALE — the linear-distribution claim (Section IV-B / V-B).

"The parallelization of the parity calculation should relieve the CPU
burden by a factor linear in the amount of machines" and "the network
step for DVDC is sped up by a factor roughly linear in the number of
machines".  Regenerates both scalings: per-node XOR time and epoch
latency as the cluster grows, DVDC vs the dedicated-checkpoint-node
architecture, at fixed per-node VM density.
"""

import pytest

from repro.analysis import format_seconds, render_table
from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import checkpoint_node, dvdc
from repro.model import ClusterModel, diskful_costs, diskless_costs
from repro.sim import Simulator

from conftest import run_to_completion

VMS_PER_NODE = 2
VM_BYTES = 1e9


def _epoch(n_nodes: int, dedicated: bool):
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes + (1 if dedicated else 0)))
    for i in range(n_nodes * VMS_PER_NODE):
        cluster.create_vm(i % n_nodes, VM_BYTES)
    if dedicated:
        ck = checkpoint_node(cluster, node_id=n_nodes, group_size=min(3, n_nodes))
    else:
        ck = dvdc(cluster, group_size=min(3, n_nodes - 1))
    return run_to_completion(sim, ck.run_cycle())


def test_scaling_dvdc_vs_dedicated(benchmark, report):
    sizes = [2, 4, 8, 16]

    def sweep():
        return {
            n: (_epoch(n, dedicated=False), _epoch(n, dedicated=True))
            for n in sizes
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for n, (r_dvdc, r_ded) in results.items():
        rows.append([
            n,
            format_seconds(r_dvdc.latency),
            format_seconds(r_dvdc.max_node_xor_seconds),
            format_seconds(r_ded.latency),
            format_seconds(r_ded.max_node_xor_seconds),
            f"{r_ded.latency / r_dvdc.latency:.1f}x",
        ])
    report(render_table(
        ["nodes", "DVDC latency", "DVDC XOR/node",
         "dedicated latency", "dedicated XOR (one node)", "DVDC speedup"],
        rows,
        title=f"ABL-SCALE — epoch cost vs cluster size ({VMS_PER_NODE} x 1 GB "
              "VMs per node)",
    ))
    # DVDC: per-node XOR time constant as the cluster grows (linear relief)
    dvdc_xors = [results[n][0].max_node_xor_seconds for n in sizes]
    assert max(dvdc_xors) / min(dvdc_xors) < 1.6
    # dedicated: XOR on the single node grows linearly with cluster size
    ded_xors = [results[n][1].max_node_xor_seconds for n in sizes]
    assert ded_xors[-1] / ded_xors[0] == pytest.approx(
        sizes[-1] / sizes[0], rel=0.3
    )
    # DVDC latency roughly flat; dedicated latency grows with n
    dvdc_lat = [results[n][0].latency for n in sizes]
    assert max(dvdc_lat) / min(dvdc_lat) < 2.0
    ded_lat = [results[n][1].latency for n in sizes]
    assert ded_lat[-1] > 4 * ded_lat[0]


def test_scaling_analytical_model(benchmark, report):
    """Same claim in the closed-form model: diskful overhead grows with
    cluster size (NAS fan-in), diskless stays flat."""

    def sweep():
        out = []
        for n in (2, 4, 8, 16, 32, 64):
            m = ClusterModel(n_nodes=n)
            out.append((
                n,
                diskful_costs(m, 600.0).overhead,
                diskless_costs(m, 600.0).overhead,
            ))
        return out

    results = benchmark(sweep)
    rows = [
        [n, format_seconds(df), format_seconds(dl), f"{df / dl:.0f}x"]
        for n, df, dl in results
    ]
    report(render_table(
        ["nodes", "diskful T_ov", "diskless T_ov", "ratio"],
        rows,
        title="ABL-SCALE — analytical overhead vs cluster size "
              "(3 VMs/node, interval 600 s)",
    ))
    diskful = [df for _, df, _ in results]
    diskless = [dl for _, _, dl in results]
    assert diskful[-1] / diskful[0] > 20  # fan-in scales with total VMs
    assert diskless[-1] / diskless[0] < 1.2  # per-node cost flat
