"""ABL-OVERLAP — overhead vs latency (Section II-B2's distinction).

"Diskless checkpointing is primarily a method not for reducing
overhead, but latency" — Plank measured a 34x latency improvement.
This ablation separates the two quantities in our system and probes the
store-and-forward assumption of the Section V model: with *overlapped*
execution (work resumes at the capture barrier; transfer/commit run in
the background), how much of the disk-full penalty remains?

Answer (regenerated below): overlap rescues the baseline's failure-free
ratio, but the *latency* gap persists — a longer capture-to-commit
window means more exposed work per failure, and recovery still pays the
NAS fan-out — so diskless keeps winning under failures.
"""


from repro.analysis import format_seconds, render_table
from repro.checkpoint import DiskfulCheckpointer, IncrementalCapture
from repro.core import dvdc
from repro.failures import Exponential, FailureInjector, FailureSchedule
from repro.workloads import CheckpointedJob, paper_scenario

from conftest import run_to_completion


def _epoch_latency(kind: str):
    sc = paper_scenario(seed=8)
    ck = (
        dvdc(sc.cluster)
        if kind == "dvdc"
        else DiskfulCheckpointer(sc.cluster)
    )
    r = run_to_completion(sc.sim, ck.run_cycle())
    return r.overhead, r.latency


def _job(kind: str, overlap: bool, seed: int, fail: bool):
    work, interval = 4 * 3600.0, 600.0
    sc = paper_scenario(seed=seed, functional=True)
    inj = None
    if fail:
        rng = sc.rngs.stream("failures")
        sched = FailureSchedule.draw(
            rng, Exponential(1 / (6 * 3600.0)), 4, horizon=work * 6,
            repair_time=30.0,
        )
        inj = FailureInjector(sc.sim, 4, schedule=sched)
    ck = (
        dvdc(sc.cluster, strategy=IncrementalCapture())
        if kind == "dvdc"
        else DiskfulCheckpointer(sc.cluster)
    )
    job = CheckpointedJob(sc.cluster, ck, work=work, interval=interval,
                          injector=inj, repair_time=30.0, overlap=overlap)
    if inj:
        inj.start()
    proc = job.start()
    sc.sim.run()
    if proc.ok is False:
        raise proc.value
    return job.result


def test_overhead_vs_latency(benchmark, report):
    """The per-epoch split: both methods pause equally; commit-latency
    differs by an order of magnitude."""

    def measure():
        return {k: _epoch_latency(k) for k in ("dvdc", "diskful")}

    results = benchmark(measure)
    rows = [
        [k, format_seconds(ov), format_seconds(lat), f"{lat / ov:.0f}x"]
        for k, (ov, lat) in results.items()
    ]
    report(render_table(
        ["method", "overhead (pause)", "latency (usable)", "latency/overhead"],
        rows,
        title="ABL-OVERLAP — overhead vs latency per epoch (full images)",
    ))
    ov_d, lat_d = results["dvdc"]
    ov_f, lat_f = results["diskful"]
    assert ov_d == ov_f  # capture is commensurable (Section V-B)
    assert lat_f > 8 * lat_d  # the diskless latency win


def test_overlapped_execution_ablation(benchmark, report):
    """Job-level: does overlapping rescue the disk-full baseline?"""

    def sweep():
        out = {}
        for fail in (False, True):
            for kind in ("dvdc", "diskful"):
                for overlap in (False, True):
                    r = _job(kind, overlap, seed=3, fail=fail)
                    out[(fail, kind, overlap)] = r
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (fail, kind, overlap), r in results.items():
        rows.append([
            "faulty" if fail else "fault-free",
            kind,
            "overlap" if overlap else "blocking",
            f"{r.time_ratio:.4f}",
            format_seconds(r.lost_work),
        ])
    report(render_table(
        ["regime", "method", "execution", "T/T_ideal", "lost work"],
        rows,
        title="ABL-OVERLAP — 4 h job, identical failure traces",
    ))
    # overlap rescues diskful's failure-free ratio...
    ff = results[(False, "diskful", False)].time_ratio
    fo = results[(False, "diskful", True)].time_ratio
    assert fo < 1.1 < ff
    # ...but under failures DVDC still wins in both execution modes
    for overlap in (False, True):
        assert (
            results[(True, "dvdc", overlap)].wall_time
            < results[(True, "diskful", overlap)].wall_time
        )
