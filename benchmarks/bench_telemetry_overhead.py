"""BENCH-TELEMETRY — the cost of instrumentation, measured not assumed.

The telemetry layer's contract is that *disabled* probes are free: every
hot-loop call site guards with ``probe is not None and probe.enabled``
(or holds ``NULL_PROBE``, whose ``enabled`` is constant ``False``).
This bench puts a number on that claim along two hot paths and gates on
the Monte-Carlo one:

* **Monte-Carlo** — ``simulate_completion_times_chunked`` at a run count
  large enough that the wall clock is dominated by real work.  The gate:
  running with a disabled probe costs <= 2% over no probe at all.
* **Simulator event storm** — a pure event-dispatch loop through
  ``Simulator.run``, the tightest loop the probe touches.  Recorded
  informationally (the per-event guard is visible here by design).

Enabled-probe numbers are recorded too, so regressions in the *active*
path show up in ``BENCH_telemetry.json`` history even though only the
disabled path is gated.
"""

import json
import time
from pathlib import Path

from repro.model import simulate_completion_times_chunked
from repro.sim import Simulator
from repro.telemetry import Probe

BENCH_REPORT = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"

#: Monte-Carlo size for the gated leg — big enough that one run takes
#: O(100ms), so timer noise is far below the 2% gate.
MC_RUNS = 40_000
#: Best-of repeats per variant; legs are interleaved so drift (thermal,
#: noisy neighbors) hits every variant equally.
REPEATS = 5
#: The acceptance bar for the disabled path (ISSUE: <= 2%).
MAX_DISABLED_OVERHEAD = 0.02

MC_PARAMS = dict(lam=1.0 / 3600.0, T=8 * 3600.0, N=900.0,
                 T_ov=120.0, T_r=60.0)


def _best_of(variants: dict) -> dict[str, float]:
    """Interleaved best-of-``REPEATS`` wall time per variant."""
    best = {name: float("inf") for name in variants}
    for _ in range(REPEATS):
        for name, fn in variants.items():
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if dt < best[name]:
                best[name] = dt
    return best


def _mc(probe):
    return simulate_completion_times_chunked(
        master_seed=7, n_runs=MC_RUNS, probe=probe, **MC_PARAMS
    )


def _event_storm(probe, n_events: int = 50_000) -> float:
    sim = Simulator(probe=probe)
    for i in range(n_events):
        sim.at(float(i), lambda: None)
    sim.run()
    return sim.now


def test_disabled_probe_overhead_gate(report):
    """The headline gate: disabled telemetry <= 2% on the MC bench."""
    disabled = Probe(enabled=False)
    enabled = Probe()
    best = _best_of({
        "baseline": lambda: _mc(None),
        "disabled": lambda: _mc(disabled),
        "enabled": lambda: _mc(enabled),
    })
    overhead_disabled = best["disabled"] / best["baseline"] - 1.0
    overhead_enabled = best["enabled"] / best["baseline"] - 1.0

    storm = _best_of({
        "baseline": lambda: _event_storm(None),
        "disabled": lambda: _event_storm(Probe(enabled=False)),
        "enabled": lambda: _event_storm(Probe()),
    })
    storm_disabled = storm["disabled"] / storm["baseline"] - 1.0
    storm_enabled = storm["enabled"] / storm["baseline"] - 1.0

    payload = {
        "mc_runs": MC_RUNS,
        "repeats": REPEATS,
        "mc_baseline_seconds": round(best["baseline"], 4),
        "mc_disabled_seconds": round(best["disabled"], 4),
        "mc_enabled_seconds": round(best["enabled"], 4),
        "mc_disabled_overhead": round(overhead_disabled, 4),
        "mc_enabled_overhead": round(overhead_enabled, 4),
        "gate_max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "sim_event_storm": {
            "events": 50_000,
            "baseline_seconds": round(storm["baseline"], 4),
            "disabled_overhead": round(storm_disabled, 4),
            "enabled_overhead": round(storm_enabled, 4),
        },
    }
    BENCH_REPORT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
    report(
        f"\nTELEMETRY overhead (best of {REPEATS}): MC {MC_RUNS} runs — "
        f"baseline {best['baseline']:.3f}s, disabled "
        f"{overhead_disabled * 100:+.2f}%, enabled "
        f"{overhead_enabled * 100:+.2f}%; event storm — disabled "
        f"{storm_disabled * 100:+.2f}%, enabled {storm_enabled * 100:+.2f}% "
        f"-> {BENCH_REPORT.name}"
    )
    assert overhead_disabled <= MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {overhead_disabled * 100:.2f}% "
        f"(> {MAX_DISABLED_OVERHEAD * 100:.0f}% gate)"
    )
    # sanity: the enabled path actually recorded something
    snap = enabled.metrics.snapshot()
    assert "repro_mc_runs_total" in snap


def test_enabled_probe_records_mc_metrics():
    """Cheap correctness companion: one small instrumented MC run."""
    probe = Probe()
    samples = simulate_completion_times_chunked(
        master_seed=3, n_runs=1024, probe=probe, **MC_PARAMS
    )
    assert samples.size == 1024
    snap = probe.metrics.snapshot()
    runs = snap["repro_mc_runs_total"]["series"][0]["value"]
    assert runs == 1024
    chunks = snap["repro_mc_chunk_seconds"]["series"][0]["count"]
    assert chunks == 2  # 1024 runs / 512 per chunk
